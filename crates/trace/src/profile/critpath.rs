//! Critical-path extraction.
//!
//! Walks the DAG backward from the root's completion. At `(w, t)` the
//! walk finds the latest steal/join arrival into `w` at or before `t`,
//! covers `w`'s timeline from that edge's *source instant* up to `t`,
//! then jumps to the source worker at the source instant. Each jump
//! strictly decreases the frontier time, and consecutive segments abut
//! in time, so the segments tile `[0, makespan]` — the path total is
//! the makespan *exactly*, by construction, and the per-bucket
//! attribution of the covered intervals answers "which costs gated the
//! run". FAA-queue edges stay out of the walk on purpose: server
//! serialization shows up as `FaaQueue` cycles on the waiter's own
//! timeline, which keeps the attribution story in one place.

use super::dag::{Dag, Edge, EdgeKind};
use crate::TimeAccount;
use uat_base::json::{FromJson, Json, JsonError, ToJson};
use uat_base::Cycles;

/// One covered interval of the critical path, on one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// Worker whose timeline the segment covers.
    pub worker: u32,
    /// Inclusive start.
    pub start: Cycles,
    /// Exclusive end.
    pub end: Cycles,
}

/// The extracted critical path.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Covered segments in forward time order; they abut, starting at 0
    /// and ending at the makespan.
    pub segments: Vec<PathSegment>,
    /// Bucket attribution of the covered intervals; totals to the
    /// makespan.
    pub account: TimeAccount,
    /// Sum of segment lengths == makespan.
    pub total: Cycles,
    /// Steal edges the walk jumped through.
    pub steal_edges: u64,
    /// Join edges the walk jumped through.
    pub join_edges: u64,
    /// Worker whose root completion anchors the path.
    pub end_worker: u32,
}

impl CriticalPath {
    /// Condensed form for embedding in run statistics / JSON artifacts.
    pub fn summary(&self) -> CriticalPathSummary {
        CriticalPathSummary {
            total: self.total,
            end_worker: self.end_worker,
            segments: self.segments.len() as u64,
            steal_edges: self.steal_edges,
            join_edges: self.join_edges,
            account: self.account.clone(),
        }
    }
}

/// Serializable digest of a [`CriticalPath`] (what `RunStats` and the
/// bench artifacts carry).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathSummary {
    /// Path length; equals the run's makespan.
    pub total: Cycles,
    /// Worker whose root completion anchors the path.
    pub end_worker: u32,
    /// Number of covered segments.
    pub segments: u64,
    /// Steal edges on the path.
    pub steal_edges: u64,
    /// Join edges on the path.
    pub join_edges: u64,
    /// Bucket attribution of on-path cycles (sums to `total`).
    pub account: TimeAccount,
}

impl ToJson for CriticalPathSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total_cycles", Json::UInt(self.total.get())),
            ("end_worker", Json::UInt(self.end_worker as u64)),
            ("segments", Json::UInt(self.segments)),
            ("steal_edges", Json::UInt(self.steal_edges)),
            ("join_edges", Json::UInt(self.join_edges)),
            ("account", self.account.to_json()),
        ])
    }
}

impl FromJson for CriticalPathSummary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CriticalPathSummary {
            total: Cycles(v.field("total_cycles")?.as_u64()?),
            end_worker: v.field("end_worker")?.as_u64()? as u32,
            segments: v.field("segments")?.as_u64()?,
            steal_edges: v.field("steal_edges")?.as_u64()?,
            join_edges: v.field("join_edges")?.as_u64()?,
            account: TimeAccount::from_json(v.field("account")?)?,
        })
    }
}

/// Extract the critical path of a built [`Dag`].
pub fn critical_path(dag: &Dag) -> CriticalPath {
    // Incoming walkable edges per destination worker, sorted by
    // (arrival, source instant) so a backward scan picks the latest
    // arrival and breaks ties toward the latest source (the shortest
    // jump — deterministic either way).
    let n = dag.worker_count();
    let mut inc: Vec<Vec<&Edge>> = vec![Vec::new(); n];
    for e in dag.edges() {
        let walkable = matches!(e.kind, EdgeKind::Steal | EdgeKind::Join)
            && e.src.worker != e.dst.worker
            && e.src.at < e.dst.at;
        if walkable && (e.dst.worker as usize) < n {
            inc[e.dst.worker as usize].push(e);
        }
    }
    for list in &mut inc {
        list.sort_by_key(|e| (e.dst.at, e.src.at));
    }

    let mut w = dag.end_worker();
    let mut t_hi = dag.makespan();
    let mut segments: Vec<PathSegment> = Vec::new();
    let mut account = TimeAccount::new();
    let (mut steal_edges, mut join_edges) = (0u64, 0u64);
    while t_hi > Cycles::ZERO {
        let list = &inc[w as usize];
        // Latest arrival at or before the frontier. src.at < dst.at
        // guarantees the jump target is strictly earlier, so the loop
        // terminates.
        let i = list.partition_point(|e| e.dst.at <= t_hi);
        let pick = i.checked_sub(1).map(|i| list[i]);
        let (lo, next) = match pick {
            Some(e) => {
                match e.kind {
                    EdgeKind::Steal => steal_edges += 1,
                    EdgeKind::Join => join_edges += 1,
                    _ => unreachable!(),
                }
                (e.src.at, Some((e.src.worker, e.src.at)))
            }
            None => (Cycles::ZERO, None),
        };
        dag.attribute(w, lo, t_hi, &mut account);
        segments.push(PathSegment {
            worker: w,
            start: lo,
            end: t_hi,
        });
        match next {
            Some((nw, nt)) => {
                w = nw;
                t_hi = nt;
            }
            None => t_hi = Cycles::ZERO,
        }
    }
    segments.reverse();
    CriticalPath {
        segments,
        total: account.total(),
        account,
        steal_edges,
        join_edges,
        end_worker: dag.end_worker(),
    }
}
