//! Happens-before DAG reconstruction from a traced run.
//!
//! The builder consumes a [`TraceData`] and produces a graph whose nodes
//! are atomic intervals of worker timelines and whose edges are the
//! causal interactions recorded by the engine. Construction is strict:
//! any condition that would make the graph unsound (dropped ring events,
//! slices that do not tile the makespan, an unmatched steal pairing)
//! is an error, not a best-effort warning — a profiler that silently
//! analyses a truncated trace produces confidently wrong answers.

use crate::{Bucket, EventKind, TraceData};
use std::collections::HashMap;
use std::fmt;
use uat_base::Cycles;

/// Which protocol interaction induced a causal edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Parent pushed its continuation and the child began, on the same
    /// worker at the same instant (child-first spawn). Degenerate —
    /// parallel to program order — but kept so edge counts reflect the
    /// full catalogue.
    Spawn,
    /// Victim's deque publish → thief's resume of the stolen thread.
    /// The span between the endpoints is the steal's end-to-end latency.
    Steal,
    /// The child completion that made a join ready → the joiner's
    /// resume past that join.
    Join,
    /// FIFO service order at one node's software FAA server: the
    /// previous queued request's service start precedes this one's.
    FaaQueue,
}

impl EdgeKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Spawn => "spawn",
            EdgeKind::Steal => "steal",
            EdgeKind::Join => "join",
            EdgeKind::FaaQueue => "faa-queue",
        }
    }
}

/// An instant on one worker's timeline (an endpoint of a causal edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Anchor {
    /// Worker index.
    pub worker: u32,
    /// Simulated time of the instant.
    pub at: Cycles,
}

/// A causal edge: the `src` instant happens-before the `dst` instant.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// What interaction the edge models.
    pub kind: EdgeKind,
    /// Source instant (e.g. the victim's deque publish).
    pub src: Anchor,
    /// Destination instant (e.g. the thief's resume).
    pub dst: Anchor,
}

/// One atomic interval of a worker's timeline: a piece of an accounting
/// slice, cut at every causal anchor that falls inside it. Nodes of one
/// worker are contiguous and tile `[0, makespan)`.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Worker index.
    pub worker: u32,
    /// Inclusive start.
    pub start: Cycles,
    /// Exclusive end (always > `start`; no zero-length nodes exist).
    pub end: Cycles,
    /// The accounting bucket the interval was charged to.
    pub bucket: Bucket,
}

impl Node {
    /// Interval length.
    pub fn dur(&self) -> Cycles {
        self.end.since(self.start)
    }
}

/// Why a trace could not be turned into a happens-before DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// A worker's ring evicted events; the DAG would have holes.
    DroppedEvents {
        /// Worker whose ring overflowed.
        worker: u32,
        /// How many events were lost.
        dropped: u64,
    },
    /// A worker recorded no timeline slices at all.
    NoSlices {
        /// The sliceless worker.
        worker: u32,
    },
    /// A worker's slices leave a gap or overlap at `at` instead of
    /// tiling `[0, makespan)` contiguously.
    SlicesDoNotTile {
        /// Worker whose timeline is broken.
        worker: u32,
        /// Where the gap/overlap was detected.
        at: Cycles,
    },
    /// No `TaskEnd` event exists, so there is no root completion to
    /// anchor the critical path at.
    NoTaskEnd,
    /// The last task completion is not at the recorded makespan.
    EndMismatch {
        /// Time of the latest `TaskEnd`.
        last_end: Cycles,
        /// Makespan the trace claims.
        makespan: Cycles,
    },
    /// A `StealCommit` names a publication seq that never appeared.
    UnmatchedSteal {
        /// The orphaned sequence number.
        seq: u64,
    },
    /// A `JoinResume` has no `JoinReady` at or before it for the same
    /// (parent, child) pair.
    UnmatchedJoin {
        /// Packed id of the resuming parent.
        parent: u64,
        /// Packed id of the claimed enabling child.
        child: u64,
    },
    /// The edge set admits no topological order. Cannot happen for a
    /// trace produced by the engine (every edge points forward in
    /// time); kept as a checked invariant rather than an assumption.
    Cyclic,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::DroppedEvents { worker, dropped } => write!(
                f,
                "worker {worker}'s ring dropped {dropped} events; rerun with a \
                 larger ring capacity (the DAG cannot be built from a truncated trace)"
            ),
            ProfileError::NoSlices { worker } => {
                write!(f, "worker {worker} recorded no timeline slices")
            }
            ProfileError::SlicesDoNotTile { worker, at } => write!(
                f,
                "worker {worker}'s slices do not tile the makespan (gap or overlap at {at:?})"
            ),
            ProfileError::NoTaskEnd => write!(f, "trace contains no task-end event"),
            ProfileError::EndMismatch { last_end, makespan } => write!(
                f,
                "latest task-end at {last_end:?} does not reach the makespan {makespan:?}"
            ),
            ProfileError::UnmatchedSteal { seq } => {
                write!(f, "steal-commit seq {seq} has no matching deque-publish")
            }
            ProfileError::UnmatchedJoin { parent, child } => write!(
                f,
                "join-resume of parent {parent} (child {child}) has no matching join-ready"
            ),
            ProfileError::Cyclic => write!(f, "happens-before graph contains a cycle"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// The happens-before DAG of one traced run.
///
/// Program order within a worker is implicit (each worker's nodes are
/// consecutive); [`Dag::edges`] holds the cross-worker (and spawn)
/// edges. Build with [`Dag::build`]; the constructor validates the
/// trace and checks acyclicity.
#[derive(Debug)]
pub struct Dag {
    pub(super) makespan: Cycles,
    pub(super) end: Anchor,
    pub(super) nodes: Vec<Node>,
    /// Per-worker contiguous index ranges into `nodes`.
    pub(super) worker_nodes: Vec<std::ops::Range<usize>>,
    pub(super) edges: Vec<Edge>,
}

impl Dag {
    /// Build and validate the DAG for a traced run.
    pub fn build(data: &TraceData) -> Result<Dag, ProfileError> {
        // A ring that evicted events has holes: slices no longer tile,
        // steal/join pairings may be orphaned. Refuse outright.
        for (w, ring) in data.workers.iter().enumerate() {
            if ring.dropped() > 0 {
                return Err(ProfileError::DroppedEvents {
                    worker: w as u32,
                    dropped: ring.dropped(),
                });
            }
        }
        let nworkers = data.workers.len();
        let makespan = data.makespan;

        // Harvest per-worker slices and the causal instants. Ring order
        // is emission order, not time order (resume instants are stamped
        // in the future, slices at span end), so everything is sorted
        // before use.
        let mut slices: Vec<Vec<Node>> = vec![Vec::new(); nworkers];
        let mut publishes: HashMap<u64, Anchor> = HashMap::new();
        let mut commits: Vec<(u64, Anchor)> = Vec::new();
        let mut readies: HashMap<(u64, u64), Vec<Anchor>> = HashMap::new();
        let mut resumes: Vec<((u64, u64), Anchor)> = Vec::new();
        let mut spawns: Vec<Anchor> = Vec::new();
        let mut last_end: Option<Anchor> = None;
        for (w, ring) in data.workers.iter().enumerate() {
            let w = w as u32;
            for ev in ring.iter() {
                let a = Anchor {
                    worker: w,
                    at: ev.at,
                };
                match ev.kind {
                    EventKind::Slice { bucket } => slices[w as usize].push(Node {
                        worker: w,
                        start: ev.at,
                        end: ev.at + ev.dur,
                        bucket,
                    }),
                    EventKind::DequePublish { seq, .. } => {
                        publishes.insert(seq, a);
                    }
                    EventKind::StealCommit { seq, .. } => commits.push((seq, a)),
                    EventKind::JoinReady { parent, child } => {
                        readies.entry((parent, child)).or_default().push(a)
                    }
                    EventKind::JoinResume { parent, child } => resumes.push(((parent, child), a)),
                    EventKind::Spawn { .. } => spawns.push(a),
                    EventKind::TaskEnd { .. } if last_end.is_none_or(|e| ev.at >= e.at) => {
                        last_end = Some(a);
                    }
                    _ => {}
                }
            }
        }

        // The root's completion defines the makespan; the critical path
        // is anchored there.
        let end = last_end.ok_or(ProfileError::NoTaskEnd)?;
        if end.at != makespan {
            return Err(ProfileError::EndMismatch {
                last_end: end.at,
                makespan,
            });
        }

        // Validate tiling and merge adjacent same-bucket slices (fewer
        // nodes, identical attribution).
        for (w, list) in slices.iter_mut().enumerate() {
            list.sort_by_key(|s| s.start);
            if list.is_empty() {
                if makespan == Cycles::ZERO {
                    continue;
                }
                return Err(ProfileError::NoSlices { worker: w as u32 });
            }
            let mut merged: Vec<Node> = Vec::with_capacity(list.len());
            let mut cursor = Cycles::ZERO;
            for s in list.iter() {
                if s.start != cursor {
                    return Err(ProfileError::SlicesDoNotTile {
                        worker: w as u32,
                        at: s.start.min(cursor),
                    });
                }
                cursor = s.end;
                match merged.last_mut() {
                    Some(prev) if prev.bucket == s.bucket => prev.end = s.end,
                    _ => merged.push(*s),
                }
            }
            if cursor != makespan {
                return Err(ProfileError::SlicesDoNotTile {
                    worker: w as u32,
                    at: cursor,
                });
            }
            *list = merged;
        }

        // Assemble the edge catalogue. Anchors beyond the makespan can
        // occur (a resume instant stamped after the root completed) and
        // constrain nothing inside the analysed window — drop them.
        let mut edges: Vec<Edge> = Vec::new();
        commits.sort_by_key(|(_, a)| a.at);
        for (seq, dst) in commits {
            let src = *publishes
                .get(&seq)
                .ok_or(ProfileError::UnmatchedSteal { seq })?;
            // A steal spans at least one remote READ, so the commit is
            // always well after the publish; the strictness guard only
            // documents the invariant the edge relies on.
            if src.at < dst.at && dst.at <= makespan {
                edges.push(Edge {
                    kind: EdgeKind::Steal,
                    src,
                    dst,
                });
            }
        }
        for list in readies.values_mut() {
            list.sort_by_key(|a| a.at);
        }
        resumes.sort_by_key(|(_, a)| a.at);
        for ((parent, child), dst) in resumes {
            // Latest ready not after the resume: packed ids can recur
            // across rounds, so pair nearest-in-time. A ready stamped
            // *after* its resume can occur when the joiner polled the
            // counter between the enabling completion's fire time and
            // its nominal (cost-accumulated) end; the pairing is
            // consumed but a backward edge would be a lie — skip it.
            let list = readies
                .get_mut(&(parent, child))
                .filter(|l| !l.is_empty())
                .ok_or(ProfileError::UnmatchedJoin { parent, child })?;
            let idx = list.partition_point(|a| a.at <= dst.at).saturating_sub(1);
            let src = list.remove(idx);
            if src.at < dst.at && dst.at <= makespan {
                edges.push(Edge {
                    kind: EdgeKind::Join,
                    src,
                    dst,
                });
            }
        }
        for a in spawns {
            if a.at <= makespan {
                edges.push(Edge {
                    kind: EdgeKind::Spawn,
                    src: a,
                    dst: a,
                });
            }
        }
        // FAA queue edges: requests that actually waited at a server,
        // chained in service order (the simulated server is FIFO in
        // issue order). `at` is the arrival instant, `dur` the wait, so
        // service starts at `at + dur`.
        let mut faa: HashMap<u64, Vec<Anchor>> = HashMap::new();
        for ev in &data.fabric {
            if let EventKind::FaaQueueWait { server, .. } = ev.kind {
                faa.entry(server.0 as u64).or_default().push(Anchor {
                    worker: ev.worker.0,
                    at: ev.at + ev.dur,
                });
            }
        }
        for list in faa.values_mut() {
            list.sort_by_key(|a| a.at);
            for pair in list.windows(2) {
                if pair[1].at <= makespan && pair[0].at < pair[1].at {
                    edges.push(Edge {
                        kind: EdgeKind::FaaQueue,
                        src: pair[0],
                        dst: pair[1],
                    });
                }
            }
        }

        // Cut each worker's slices at every anchor that lands strictly
        // inside one, so every edge endpoint coincides with a node
        // boundary.
        let mut cuts: Vec<Vec<Cycles>> = vec![Vec::new(); nworkers];
        for e in &edges {
            if (e.src.worker as usize) < nworkers {
                cuts[e.src.worker as usize].push(e.src.at);
            }
            if (e.dst.worker as usize) < nworkers {
                cuts[e.dst.worker as usize].push(e.dst.at);
            }
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut worker_nodes: Vec<std::ops::Range<usize>> = Vec::with_capacity(nworkers);
        for (w, list) in slices.into_iter().enumerate() {
            let c = &mut cuts[w];
            c.sort();
            c.dedup();
            let begin = nodes.len();
            let mut ci = 0usize;
            for s in list {
                let mut lo = s.start;
                while ci < c.len() && c[ci] <= lo {
                    ci += 1;
                }
                while ci < c.len() && c[ci] < s.end {
                    nodes.push(Node {
                        worker: s.worker,
                        start: lo,
                        end: c[ci],
                        bucket: s.bucket,
                    });
                    lo = c[ci];
                    ci += 1;
                }
                nodes.push(Node {
                    worker: s.worker,
                    start: lo,
                    end: s.end,
                    bucket: s.bucket,
                });
            }
            worker_nodes.push(begin..nodes.len());
        }

        let dag = Dag {
            makespan,
            end,
            nodes,
            worker_nodes,
            edges,
        };
        dag.check_acyclic()?;
        Ok(dag)
    }

    /// The run's makespan (equals the critical path's total).
    pub fn makespan(&self) -> Cycles {
        self.makespan
    }

    /// Worker whose root-completion anchors the critical path.
    pub fn end_worker(&self) -> u32 {
        self.end.worker
    }

    /// Number of workers covered by the DAG.
    pub fn worker_count(&self) -> usize {
        self.worker_nodes.len()
    }

    /// All timeline nodes, grouped by worker, in time order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The cross-worker / spawn edge catalogue.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges of one kind.
    pub fn edge_count(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Index into [`Dag::nodes`] of the node on `worker` starting at
    /// `at`, if any.
    pub(super) fn node_starting_at(&self, worker: u32, at: Cycles) -> Option<usize> {
        let range = self.worker_nodes.get(worker as usize)?.clone();
        let list = &self.nodes[range.clone()];
        let i = list.partition_point(|n| n.start < at);
        (i < list.len() && list[i].start == at).then_some(range.start + i)
    }

    /// Index of the node on `worker` ending exactly at `at`, if any.
    pub(super) fn node_ending_at(&self, worker: u32, at: Cycles) -> Option<usize> {
        let range = self.worker_nodes.get(worker as usize)?.clone();
        let list = &self.nodes[range.clone()];
        let i = list.partition_point(|n| n.end < at);
        (i < list.len() && list[i].end == at).then_some(range.start + i)
    }

    /// Charge the bucket time of `worker`'s timeline overlapping
    /// `[lo, hi)` into `acct`.
    pub(super) fn attribute(
        &self,
        worker: u32,
        lo: Cycles,
        hi: Cycles,
        acct: &mut crate::TimeAccount,
    ) {
        let range = self.worker_nodes[worker as usize].clone();
        let list = &self.nodes[range];
        let mut i = list.partition_point(|n| n.end <= lo);
        while i < list.len() && list[i].start < hi {
            let n = &list[i];
            let span = n.end.min(hi).since(n.start.max(lo));
            acct.charge(n.bucket, span);
            i += 1;
        }
    }

    /// Verify the happens-before relation admits a topological order.
    ///
    /// Every engine-produced edge points forward in time, which already
    /// forces acyclicity; this runs an explicit Kahn peel over program
    /// order plus the cross edges so the property is *checked*, not
    /// assumed (CI asserts it on every profiled run).
    pub fn check_acyclic(&self) -> Result<(), ProfileError> {
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        // Cross edges, mapped to node indices: source = node ending at
        // the src instant, destination = node starting at the dst
        // instant. Endpoints at time 0 / makespan have no such node and
        // constrain nothing inside the window.
        let mut adj: Vec<(u32, u32)> = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            let (Some(s), Some(d)) = (
                self.node_ending_at(e.src.worker, e.src.at),
                self.node_starting_at(e.dst.worker, e.dst.at),
            ) else {
                continue;
            };
            adj.push((s as u32, d as u32));
            indegree[d] += 1;
        }
        adj.sort_unstable();
        let heads: Vec<usize> = {
            let mut h = vec![adj.len(); n];
            for (i, &(s, _)) in adj.iter().enumerate().rev() {
                h[s as usize] = i;
            }
            h
        };
        // Program order: each node follows its predecessor on the same
        // worker.
        for r in &self.worker_nodes {
            for i in r.clone().skip(1) {
                indegree[i] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = ready.pop() {
            seen += 1;
            // Successor in program order.
            let wr = &self.worker_nodes[self.nodes[i].worker as usize];
            if i + 1 < wr.end {
                indegree[i + 1] -= 1;
                if indegree[i + 1] == 0 {
                    ready.push(i + 1);
                }
            }
            // Cross-edge successors.
            let mut j = heads[i];
            while j < adj.len() && adj[j].0 as usize == i {
                let d = adj[j].1 as usize;
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
                j += 1;
            }
        }
        if seen == n {
            Ok(())
        } else {
            Err(ProfileError::Cyclic)
        }
    }
}
