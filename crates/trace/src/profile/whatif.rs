//! What-if analysis: predict the makespan under a scaled cost class.
//!
//! A frozen-schedule replay of the whole DAG: every node keeps its
//! original duration unless its bucket belongs to the scaled class, and
//! nodes are re-timed in dependency order — a node starts at the later
//! of its program-order predecessor's new end and the new times of its
//! incoming causal edges' sources. With factor 1 the replay reproduces
//! the original makespan exactly (a checked sanity invariant); with
//! factor ≠ 1 it predicts how the *existing* schedule would stretch.
//! What it deliberately does not model: the scheduler making different
//! decisions under the new costs (different victims, different steal
//! interleavings). That divergence is exactly what validation against a
//! ground-truth re-run with the scaled [`CostModel`] measures — see
//! DESIGN.md §8 for the caveats.

use super::dag::Dag;
use crate::Bucket;
use std::collections::{BinaryHeap, HashMap};
use uat_base::{CostModel, Cycles};

/// A scalable cost class: a set of timeline buckets (for the replay)
/// plus the [`CostModel`] knobs that realize the same scaling in a
/// ground-truth re-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// RDMA READ latency: the empty-check, entry-steal, and
    /// stack-transfer phases of every steal.
    RdmaRead,
    /// The software FAA path: lock round trips and comm-server queueing.
    Faa,
    /// Suspend/resume of continuations, including the stack copies.
    SuspendCopy,
}

impl CostClass {
    /// Every class, in display order.
    pub const ALL: [CostClass; 3] = [CostClass::RdmaRead, CostClass::Faa, CostClass::SuspendCopy];

    /// Stable display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            CostClass::RdmaRead => "rdma-read",
            CostClass::Faa => "faa",
            CostClass::SuspendCopy => "suspend",
        }
    }

    /// Parse a CLI name as produced by [`CostClass::name`].
    pub fn parse(s: &str) -> Option<CostClass> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The timeline buckets whose durations the class scales.
    ///
    /// `RdmaRead` claims the three read-dominated steal phases (the
    /// entry-steal phase also contains one small WRITE, so its true
    /// scaling is slightly sub-linear — a documented approximation).
    pub fn buckets(self) -> &'static [Bucket] {
        match self {
            CostClass::RdmaRead => &[
                Bucket::StealEmpty,
                Bucket::StealEntry,
                Bucket::StealTransfer,
            ],
            CostClass::Faa => &[Bucket::StealLock, Bucket::FaaQueue],
            CostClass::SuspendCopy => &[Bucket::SuspendResume],
        }
    }

    /// Scale the matching [`CostModel`] knobs by `factor`, for a
    /// ground-truth re-run of the engine under the hypothetical.
    pub fn apply(self, cost: &mut CostModel, factor: f64) {
        fn scale(v: &mut u64, f: f64) {
            *v = (*v as f64 * f).round() as u64;
        }
        match self {
            CostClass::RdmaRead => scale(&mut cost.rdma_read_base, factor),
            CostClass::Faa => {
                scale(&mut cost.faa_notice_latency, factor);
                scale(&mut cost.faa_service, factor);
            }
            CostClass::SuspendCopy => {
                scale(&mut cost.suspend_base, factor);
                scale(&mut cost.resume_base, factor);
                // Stack copies are part of suspend/resume: slow the
                // copy engine by the same factor.
                cost.memcpy_bytes_per_cycle /= factor;
            }
        }
    }
}

/// Predict the makespan if every node charged to one of `buckets` had
/// its duration multiplied by `factor`, all else unchanged.
///
/// Returns the new time of the root's completion instant.
pub fn predict_scaled(dag: &Dag, buckets: &[Bucket], factor: f64) -> Cycles {
    // Incoming edges keyed by destination (worker, original start).
    let mut inbound: HashMap<(u32, u64), Vec<(u32, u64)>> = HashMap::new();
    for e in dag.edges() {
        // An endpoint at the very start or end of the window has no
        // node boundary to attach to and constrains nothing.
        if e.dst.at >= dag.makespan() || (e.src.worker == e.dst.worker && e.src.at == e.dst.at) {
            continue;
        }
        inbound
            .entry((e.dst.worker, e.dst.at.get()))
            .or_default()
            .push((e.src.worker, e.src.at.get()));
    }

    // Re-time nodes in original start order (per-worker order preserved
    // via a k-way merge). Sources of every edge end strictly before
    // their destination's start, so they are always re-timed first.
    let n = dag.worker_count();
    let mut new_at: HashMap<(u32, u64), u64> = HashMap::with_capacity(dag.nodes().len() + n);
    for w in 0..n {
        new_at.insert((w as u32, 0), 0);
    }
    let per_worker: Vec<&[super::dag::Node]> = (0..n)
        .map(|w| {
            let r = dag.worker_nodes[w].clone();
            &dag.nodes[r]
        })
        .collect();
    let mut idx = vec![0usize; n];
    let mut prev_end = vec![0u64; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..n)
        .filter(|&w| !per_worker[w].is_empty())
        .map(|w| std::cmp::Reverse((per_worker[w][0].start.get(), w as u32)))
        .collect();
    while let Some(std::cmp::Reverse((_, w))) = heap.pop() {
        let wi = w as usize;
        let node = &per_worker[wi][idx[wi]];
        let mut start = prev_end[wi];
        if let Some(srcs) = inbound.remove(&(w, node.start.get())) {
            for (sw, st) in srcs {
                if let Some(&t) = new_at.get(&(sw, st)) {
                    start = start.max(t);
                }
            }
        }
        let dur = node.dur().get();
        let scaled = if factor != 1.0 && buckets.contains(&node.bucket) {
            (dur as f64 * factor).round() as u64
        } else {
            dur
        };
        let end = start + scaled;
        prev_end[wi] = end;
        new_at.insert((w, node.end.get()), end);
        idx[wi] += 1;
        if let Some(next) = per_worker[wi].get(idx[wi]) {
            heap.push(std::cmp::Reverse((next.start.get(), w)));
        }
    }

    Cycles(
        new_at
            .get(&(dag.end_worker(), dag.makespan().get()))
            .copied()
            .unwrap_or(0),
    )
}

/// Predict the makespan under `class` scaled by `factor`.
pub fn predict(dag: &Dag, class: CostClass, factor: f64) -> Cycles {
    predict_scaled(dag, class.buckets(), factor)
}
