//! The causal profiler: happens-before DAG, critical path, what-if.
//!
//! A traced run (see [`TraceData`](crate::TraceData)) records *what*
//! every worker spent its cycles on; this module reconstructs *why* —
//! which of those cycles actually gated the makespan. Three layers:
//!
//! - [`Dag`]: the happens-before graph of the run. Nodes are atomic
//!   intervals of worker timelines (the accounting slices, cut at every
//!   causal instant); edges are intra-worker program order plus the
//!   cross-worker interactions of the protocol — spawn→child,
//!   victim deque-publish → thief resume (steal), child-end → joiner
//!   resume (join), and FIFO service order at each node's software FAA
//!   server. The graph is validated on construction: rings must not
//!   have dropped events, slices must tile `[0, makespan)` exactly on
//!   every worker, and the edge set must be acyclic.
//! - [`critical_path`]: walks the DAG backward from the root's
//!   completion, producing a chain of timeline segments that tiles
//!   `[0, makespan]` exactly — so its total *is* the makespan and its
//!   per-[`Bucket`](crate::Bucket) attribution says "X% of the makespan
//!   is steal-phase latency *on the critical path*".
//! - [`whatif`]: scales one [`CostClass`]'s buckets by a factor and
//!   replays the whole DAG to predict the new makespan — the
//!   simulation analogue of Coz's virtual speedups. Predictions are
//!   validated against ground-truth re-runs of the engine with the
//!   scaled cost model (cheap, because this is a simulator).
//!
//! See DESIGN.md §8 for the edge catalogue, the algorithm, and the
//! validity caveats of what-if predictions.

mod critpath;
mod dag;
mod whatif;

pub use critpath::{critical_path, CriticalPath, CriticalPathSummary, PathSegment};
pub use dag::{Anchor, Dag, Edge, EdgeKind, Node, ProfileError};
pub use whatif::{predict, predict_scaled, CostClass};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bucket, EventKind, RingBuffer, RingSink, TimeAccount, TraceData, TraceEvent};
    use uat_base::json::{FromJson, Json, ToJson};
    use uat_base::{Cycles, WorkerId};

    fn slice(w: u32, start: u64, end: u64, bucket: Bucket) -> TraceEvent {
        TraceEvent::span(
            Cycles(start),
            Cycles(end - start),
            WorkerId(w),
            EventKind::Slice { bucket },
        )
    }

    fn instant(w: u32, at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent::instant(Cycles(at), WorkerId(w), kind)
    }

    fn data(workers: usize, makespan: u64, events: &[TraceEvent]) -> TraceData {
        let mut sink = RingSink::new(workers, 1024);
        for ev in events {
            crate::TraceSink::record(&mut sink, *ev);
        }
        TraceData {
            clock_hz: 1.848e9,
            clock_source: crate::ClockSource::Simulated,
            workers: sink.into_rings(),
            fabric: Vec::new(),
            makespan: Cycles(makespan),
        }
    }

    /// One worker, one Work slice: the whole timeline is the path.
    fn chain() -> TraceData {
        data(
            1,
            1_000,
            &[
                slice(0, 0, 1_000, Bucket::Work),
                instant(
                    0,
                    1_000,
                    EventKind::TaskEnd {
                        task: 1,
                        run: Cycles(1_000),
                    },
                ),
            ],
        )
    }

    /// Worker 1 steals at 500 (published at 200), finishes the child at
    /// 900; worker 0 joins on it and resumes at 950.
    fn steal_join() -> TraceData {
        data(
            2,
            1_000,
            &[
                slice(0, 0, 600, Bucket::Work),
                slice(0, 600, 950, Bucket::Idle),
                slice(0, 950, 1_000, Bucket::Work),
                instant(0, 200, EventKind::DequePublish { task: 1, seq: 1 }),
                instant(
                    0,
                    950,
                    EventKind::JoinResume {
                        parent: 1,
                        child: 5,
                    },
                ),
                instant(
                    0,
                    1_000,
                    EventKind::TaskEnd {
                        task: 1,
                        run: Cycles(1_000),
                    },
                ),
                slice(1, 0, 200, Bucket::Idle),
                slice(1, 200, 500, Bucket::StealTransfer),
                slice(1, 500, 900, Bucket::Work),
                slice(1, 900, 1_000, Bucket::Idle),
                instant(1, 500, EventKind::StealCommit { task: 1, seq: 1 }),
                instant(
                    1,
                    900,
                    EventKind::JoinReady {
                        parent: 1,
                        child: 5,
                    },
                ),
                instant(
                    1,
                    900,
                    EventKind::TaskEnd {
                        task: 5,
                        run: Cycles(400),
                    },
                ),
            ],
        )
    }

    /// Diamond: two children, the remote one (stolen at 300) finishes
    /// last and gates the parent's join.
    fn diamond() -> TraceData {
        data(
            2,
            1_000,
            &[
                slice(0, 0, 800, Bucket::Work),
                slice(0, 800, 900, Bucket::Idle),
                slice(0, 900, 1_000, Bucket::Work),
                instant(0, 250, EventKind::DequePublish { task: 1, seq: 7 }),
                instant(
                    0,
                    800,
                    EventKind::TaskEnd {
                        task: 2,
                        run: Cycles(550),
                    },
                ),
                instant(
                    0,
                    900,
                    EventKind::JoinResume {
                        parent: 1,
                        child: 3,
                    },
                ),
                instant(
                    0,
                    1_000,
                    EventKind::TaskEnd {
                        task: 1,
                        run: Cycles(1_000),
                    },
                ),
                slice(1, 0, 300, Bucket::Idle),
                slice(1, 300, 850, Bucket::Work),
                slice(1, 850, 1_000, Bucket::Idle),
                instant(1, 300, EventKind::StealCommit { task: 1, seq: 7 }),
                instant(
                    1,
                    850,
                    EventKind::JoinReady {
                        parent: 1,
                        child: 3,
                    },
                ),
                instant(
                    1,
                    850,
                    EventKind::TaskEnd {
                        task: 3,
                        run: Cycles(600),
                    },
                ),
            ],
        )
    }

    #[test]
    fn chain_path_is_all_work() {
        let dag = Dag::build(&chain()).unwrap();
        let cp = critical_path(&dag);
        assert_eq!(cp.total, Cycles(1_000));
        assert_eq!(cp.account.get(Bucket::Work), Cycles(1_000));
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.steal_edges + cp.join_edges, 0);
        assert_eq!(cp.end_worker, 0);
    }

    #[test]
    fn steal_join_path_attribution_is_exact() {
        let dag = Dag::build(&steal_join()).unwrap();
        assert_eq!(dag.edge_count(EdgeKind::Steal), 1);
        assert_eq!(dag.edge_count(EdgeKind::Join), 1);
        let cp = critical_path(&dag);
        assert_eq!(cp.total, dag.makespan());
        assert_eq!(cp.account.total(), dag.makespan());
        assert_eq!(cp.account.get(Bucket::Work), Cycles(650));
        assert_eq!(cp.account.get(Bucket::StealTransfer), Cycles(300));
        assert_eq!(cp.account.get(Bucket::Idle), Cycles(50));
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.steal_edges, 1);
        assert_eq!(cp.join_edges, 1);
        // The segments abut and span [0, makespan].
        assert_eq!(cp.segments[0].start, Cycles::ZERO);
        for pair in cp.segments.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(cp.segments.last().unwrap().end, dag.makespan());
    }

    #[test]
    fn diamond_path_follows_the_slower_child() {
        let dag = Dag::build(&diamond()).unwrap();
        let cp = critical_path(&dag);
        assert_eq!(cp.total, Cycles(1_000));
        // [0,250) w0 Work + [250,850) w1 Idle 50 / Work 550 + [850,1000) w0
        // Idle 50 / Work 100.
        assert_eq!(cp.account.get(Bucket::Work), Cycles(900));
        assert_eq!(cp.account.get(Bucket::Idle), Cycles(100));
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.steal_edges, 1);
        assert_eq!(cp.join_edges, 1);
    }

    #[test]
    fn built_dag_is_acyclic() {
        for d in [chain(), steal_join(), diamond()] {
            let dag = Dag::build(&d).unwrap();
            dag.check_acyclic().unwrap();
        }
    }

    #[test]
    fn whatif_factor_one_reproduces_makespan() {
        for d in [chain(), steal_join(), diamond()] {
            let dag = Dag::build(&d).unwrap();
            for class in CostClass::ALL {
                assert_eq!(predict(&dag, class, 1.0), dag.makespan());
            }
        }
    }

    #[test]
    fn whatif_replay_respects_dependencies() {
        let dag = Dag::build(&steal_join()).unwrap();
        // Doubling the transfer pushes the thief's child 300 later; the
        // parent's post-join tail (idle until the join at 1200, then 50
        // cycles of work) lands at 1250 — not 2x the whole transfer
        // appended to the old makespan.
        let p = predict_scaled(&dag, &[Bucket::StealTransfer], 2.0);
        assert_eq!(p, Cycles(1_250));
        // Doubling Work: the parent's pre-join work (650 -> 1300 plus
        // 350 idle = 1550) still gates its resume (the thief's chain
        // reaches the join at 1300), then the 50-cycle tail doubles.
        let p = predict_scaled(&dag, &[Bucket::Work], 2.0);
        assert_eq!(p, Cycles(1_650));
    }

    #[test]
    fn dropped_ring_is_refused() {
        let mut ring = RingBuffer::new(1);
        ring.push(slice(0, 0, 500, Bucket::Work));
        ring.push(slice(0, 500, 1_000, Bucket::Work));
        let d = TraceData {
            clock_hz: 1.848e9,
            clock_source: crate::ClockSource::Simulated,
            workers: vec![ring],
            fabric: Vec::new(),
            makespan: Cycles(1_000),
        };
        match Dag::build(&d) {
            Err(ProfileError::DroppedEvents {
                worker: 0,
                dropped: 1,
            }) => {}
            other => panic!("expected DroppedEvents, got {other:?}"),
        }
    }

    #[test]
    fn gapped_slices_are_refused() {
        let d = data(
            1,
            1_000,
            &[
                slice(0, 0, 400, Bucket::Work),
                slice(0, 500, 1_000, Bucket::Work),
                instant(
                    0,
                    1_000,
                    EventKind::TaskEnd {
                        task: 1,
                        run: Cycles(1_000),
                    },
                ),
            ],
        );
        assert!(matches!(
            Dag::build(&d),
            Err(ProfileError::SlicesDoNotTile {
                worker: 0,
                at: Cycles(400)
            })
        ));
    }

    #[test]
    fn summary_json_round_trips() {
        let dag = Dag::build(&steal_join()).unwrap();
        let summary = critical_path(&dag).summary();
        let text = summary.to_json().to_string();
        let back = CriticalPathSummary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, summary);
        assert_eq!(back.account, summary.account);
        assert_eq!(TimeAccount::total(&back.account), Cycles(1_000));
    }
}
