//! Bounded per-worker event storage.
//!
//! Tracing a long run can produce far more events than anyone wants to
//! keep; the ring holds the most recent `capacity` events and counts how
//! many it had to drop, so exporters can say "…and 1.2M earlier events
//! were discarded" instead of silently lying.

use crate::TraceEvent;
use std::collections::VecDeque;

/// Fixed-capacity FIFO of [`TraceEvent`]s that drops its oldest entry
/// when full.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBuffer {
    /// Ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record `n` drops that happened outside this ring — used when a
    /// trace is re-built (e.g. clipped to a makespan) from a ring that
    /// had already evicted events, so the rebuilt ring stays honest
    /// about truncation instead of laundering the loss away.
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;
    use uat_base::{Cycles, WorkerId};

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::instant(Cycles(t), WorkerId(0), EventKind::IdlePoll)
    }

    #[test]
    fn keeps_most_recent_when_full() {
        let mut r = RingBuffer::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let times: Vec<u64> = r.iter().map(|e| e.at.get()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().at, Cycles(2));
    }
}
