//! Where trace events go.
//!
//! The engine emits through a [`TraceSink`]; the default [`NullSink`]
//! compiles to nothing, and [`RingSink`] keeps a bounded per-worker
//! ring. Custom sinks (e.g. a streaming writer) implement the trait.

use crate::{RingBuffer, TraceEvent};

/// Receiver of trace events.
pub trait TraceSink {
    /// Accept one event.
    fn record(&mut self, ev: TraceEvent);
}

/// Discards everything; the zero-overhead default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// One bounded [`RingBuffer`] per worker.
#[derive(Clone, Debug)]
pub struct RingSink {
    rings: Vec<RingBuffer>,
}

impl RingSink {
    /// Sink for `workers` workers with `capacity` events each.
    pub fn new(workers: usize, capacity: usize) -> Self {
        RingSink {
            rings: (0..workers).map(|_| RingBuffer::new(capacity)).collect(),
        }
    }

    /// The per-worker rings, indexed by worker id.
    pub fn rings(&self) -> &[RingBuffer] {
        &self.rings
    }

    /// Consume the sink, yielding its rings.
    pub fn into_rings(self) -> Vec<RingBuffer> {
        self.rings
    }

    /// Total events currently buffered across workers.
    pub fn len(&self) -> usize {
        self.rings.iter().map(RingBuffer::len).sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        let w = ev.worker.index();
        if let Some(ring) = self.rings.get_mut(w) {
            ring.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;
    use uat_base::{Cycles, WorkerId};

    #[test]
    fn ring_sink_routes_by_worker() {
        let mut s = RingSink::new(2, 8);
        s.record(TraceEvent::instant(
            Cycles(1),
            WorkerId(0),
            EventKind::IdlePoll,
        ));
        s.record(TraceEvent::instant(
            Cycles(2),
            WorkerId(1),
            EventKind::IdlePoll,
        ));
        s.record(TraceEvent::instant(
            Cycles(3),
            WorkerId(1),
            EventKind::IdlePoll,
        ));
        assert_eq!(s.rings()[0].len(), 1);
        assert_eq!(s.rings()[1].len(), 2);
        // Out-of-range worker ids are ignored rather than panicking.
        s.record(TraceEvent::instant(
            Cycles(4),
            WorkerId(9),
            EventKind::IdlePoll,
        ));
        assert_eq!(s.len(), 3);
    }
}
