//! Per-worker tracing for the uni-address work-stealing simulator.
//!
//! Three layers, usable separately:
//!
//! - **Events** ([`TraceEvent`] / [`EventKind`]): structured records of
//!   what each worker did — task begin/end/spawn/suspend/resume, the
//!   seven steal phases of the paper's Table 3 (with victim and
//!   outcome), FAA-queue waits at the software comm server, and idle
//!   polls — stamped with simulated [`Cycles`](uat_base::Cycles) and
//!   stored in bounded per-worker [`RingBuffer`]s behind a
//!   [`TraceSink`]. The default [`NullSink`] discards everything; the
//!   engine's hot path additionally compiles the hooks out entirely
//!   when its `trace` cargo feature is off.
//! - **Accounting** ([`TimeAccount`] / [`Bucket`]): every simulated
//!   cycle of every worker charged to exactly one bucket (work, spawn,
//!   suspend/resume, the five steal phases, FAA queueing, idle), so a
//!   worker's buckets sum to the run's makespan.
//! - **Export** ([`export`]): Chrome trace-event JSON — open the file
//!   in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`, one
//!   track per worker with flow arrows linking each deque publish to
//!   the thief that took it — and JSONL for machine-readable run
//!   summaries.
//! - **Profile** ([`profile`]): the causal layer — reconstructs the
//!   happens-before [`Dag`](profile::Dag) of a run, extracts the
//!   critical path (with bucket attribution that sums to the makespan
//!   exactly), and answers what-if questions by replaying the DAG with
//!   one cost class scaled.
//!
//! This crate depends only on `uat-base`; the RDMA fabric, engine, and
//! experiment binaries layer their instrumentation on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod event;
pub mod export;
pub mod profile;
pub mod ring;
pub mod sink;

pub use account::{Bucket, TimeAccount};
pub use event::{EventKind, RdmaOpKind, StealOutcome, StealPhaseId, TraceEvent};
pub use export::{
    chrome_trace, chrome_trace_json, flight_trace_json, jsonl, ClockSource, TraceData,
};
pub use profile::{critical_path, CostClass, CriticalPath, CriticalPathSummary, Dag, ProfileError};
pub use ring::RingBuffer;
pub use sink::{NullSink, RingSink, TraceSink};
