//! The structured trace event model.
//!
//! Every event carries the emitting worker, a start timestamp in
//! simulated [`Cycles`], and a duration (zero for instants). The
//! [`EventKind`] payload mirrors the protocol vocabulary of the paper:
//! task lifecycle, the seven steal phases of Table 3, FAA-queue waits at
//! the comm server, and idle polls.

use serde::{Deserialize, Serialize};
use uat_base::{Cycles, NodeId, WorkerId};

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Start of the event, in simulated cycles since the run began.
    pub at: Cycles,
    /// Duration in cycles; zero marks an instantaneous event.
    pub dur: Cycles,
    /// Worker whose timeline this event belongs to.
    pub worker: WorkerId,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// An instantaneous event.
    pub fn instant(at: Cycles, worker: WorkerId, kind: EventKind) -> Self {
        TraceEvent {
            at,
            dur: Cycles::ZERO,
            worker,
            kind,
        }
    }

    /// An event spanning `[at, at + dur)`.
    pub fn span(at: Cycles, dur: Cycles, worker: WorkerId, kind: EventKind) -> Self {
        TraceEvent {
            at,
            dur,
            worker,
            kind,
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A task started running for the first time.
    TaskBegin {
        /// Packed task id.
        task: u64,
    },
    /// A task ran to completion.
    TaskEnd {
        /// Packed task id.
        task: u64,
        /// Wall-clock (simulated) span from spawn to completion.
        run: Cycles,
    },
    /// A task spawned a child (child-first: the child runs next).
    Spawn {
        /// Packed id of the spawning task.
        parent: u64,
        /// Packed id of the new task.
        child: u64,
    },
    /// The running task was suspended (blocked join or preempted by a thief).
    Suspend {
        /// Packed task id.
        task: u64,
    },
    /// A previously suspended task resumed.
    Resume {
        /// Packed task id.
        task: u64,
    },
    /// A timeline slice charged to one accounting bucket
    /// (see [`crate::Bucket`]); these tile each worker's timeline.
    Slice {
        /// The bucket the span was charged to.
        bucket: crate::Bucket,
    },
    /// One phase of a steal attempt, with the same duration fed to the
    /// `StealBreakdown` accumulator (Figure 10).
    StealPhase {
        /// The worker being robbed.
        victim: WorkerId,
        /// Which protocol phase.
        phase: StealPhaseId,
    },
    /// A steal attempt finished.
    StealResult {
        /// The worker that was targeted.
        victim: WorkerId,
        /// How the attempt ended.
        outcome: StealOutcome,
        /// End-to-end latency of the whole attempt, from its first
        /// protocol phase through this result (includes the resume for
        /// completed steals). Lets consumers rebuild exact steal-latency
        /// distributions from a full trace.
        latency: Cycles,
    },
    /// A continuation entry was pushed into this worker's own deque,
    /// where a thief may take it. `seq` uniquely identifies this
    /// publication; a later [`EventKind::StealCommit`] carrying the same
    /// `seq` marks the thief-side resume, and the pair induces the
    /// profiler's steal edge (and a Perfetto flow arrow).
    DequePublish {
        /// Packed id of the published (parent) task.
        task: u64,
        /// Publication sequence number, unique within a run.
        seq: u64,
    },
    /// A stolen continuation resumed on this (thief) worker. `seq` names
    /// the [`EventKind::DequePublish`] that made it stealable.
    StealCommit {
        /// Packed id of the stolen task.
        task: u64,
        /// Sequence number of the matching publication.
        seq: u64,
    },
    /// The completion of `child` on this worker dropped `parent`'s
    /// outstanding-children count to zero: the parent's join is now
    /// ready. The matching [`EventKind::JoinResume`] on the parent's
    /// worker closes the profiler's join edge.
    JoinReady {
        /// Packed id of the joining (parent) task.
        parent: u64,
        /// Packed id of the child whose completion enabled the join.
        child: u64,
    },
    /// `parent` resumed past its join; `child` is the completion that
    /// enabled it (recorded by the matching [`EventKind::JoinReady`]).
    JoinResume {
        /// Packed id of the resuming (parent) task.
        parent: u64,
        /// Packed id of the enabling child.
        child: u64,
    },
    /// Time an FAA request spent queued behind others at the victim
    /// node's software comm server.
    FaaQueueWait {
        /// Queueing delay excluded from the wire time.
        wait: Cycles,
        /// Node whose comm server the request queued at.
        server: NodeId,
    },
    /// An idle scheduler poll (nothing local, no steal issued).
    IdlePoll,
    /// The worker gave up spinning and went to sleep (native backend:
    /// the idle backoff crossed its spin threshold; the sim has no
    /// analogue because idle workers poll every round).
    Park,
    /// The worker woke from a park and found work again.
    Unpark,
    /// An RDMA operation issued by this worker (fabric-level view).
    RdmaOp {
        /// Operation type.
        op: RdmaOpKind,
        /// Node the operation targeted.
        target: NodeId,
        /// Payload size in bytes.
        bytes: u64,
    },
}

impl EventKind {
    /// Short display name (used as the Chrome trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskBegin { .. } => "task-begin",
            EventKind::TaskEnd { .. } => "task-end",
            EventKind::Spawn { .. } => "spawn",
            EventKind::Suspend { .. } => "suspend",
            EventKind::Resume { .. } => "resume",
            EventKind::Slice { bucket } => bucket.name(),
            EventKind::StealPhase { phase, .. } => phase.name(),
            EventKind::StealResult { .. } => "steal-result",
            EventKind::DequePublish { .. } => "deque-publish",
            EventKind::StealCommit { .. } => "steal-commit",
            EventKind::JoinReady { .. } => "join-ready",
            EventKind::JoinResume { .. } => "join-resume",
            EventKind::FaaQueueWait { .. } => "faa-queue-wait",
            EventKind::IdlePoll => "idle-poll",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::RdmaOp { op, .. } => op.name(),
        }
    }

    /// Chrome trace category, used by tooling to filter event families.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::TaskBegin { .. }
            | EventKind::TaskEnd { .. }
            | EventKind::Spawn { .. }
            | EventKind::Suspend { .. }
            | EventKind::Resume { .. } => "task",
            EventKind::Slice { .. } => "timeline",
            EventKind::StealPhase { .. } => "steal",
            EventKind::DequePublish { .. } | EventKind::StealCommit { .. } => "steal-flow",
            EventKind::JoinReady { .. } | EventKind::JoinResume { .. } => "join-flow",
            EventKind::StealResult { .. } => "steal-result",
            EventKind::FaaQueueWait { .. } | EventKind::RdmaOp { .. } => "rdma",
            EventKind::IdlePoll | EventKind::Park | EventKind::Unpark => "sched",
        }
    }
}

/// The seven steal phases of Table 3, as the trace layer names them.
///
/// This mirrors `uat_core::StealPhase`; the trace crate sits below
/// `uat-core` in the dependency graph (the RDMA fabric records into it),
/// so it carries its own copy of the enum rather than importing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StealPhaseId {
    /// RDMA READ of (top, bottom): is the victim's queue non-empty?
    EmptyCheck,
    /// Remote fetch-and-add acquiring the queue lock.
    Lock,
    /// Two RDMA READs + one RDMA WRITE taking the queue entry.
    Steal,
    /// Thief-side suspend of whatever it was running.
    Suspend,
    /// RDMA READ of the stolen thread's frames.
    StackTransfer,
    /// RDMA WRITE of 0 releasing the queue lock.
    Unlock,
    /// `resume_context` of the stolen thread.
    Resume,
}

impl StealPhaseId {
    /// All phases in protocol order.
    pub const ALL: [StealPhaseId; 7] = [
        StealPhaseId::EmptyCheck,
        StealPhaseId::Lock,
        StealPhaseId::Steal,
        StealPhaseId::Suspend,
        StealPhaseId::StackTransfer,
        StealPhaseId::Unlock,
        StealPhaseId::Resume,
    ];

    /// Name matching `uat_core::StealPhase::name`, prefixed for tracks.
    pub fn name(self) -> &'static str {
        match self {
            StealPhaseId::EmptyCheck => "steal-phase: empty check",
            StealPhaseId::Lock => "steal-phase: lock",
            StealPhaseId::Steal => "steal-phase: steal",
            StealPhaseId::Suspend => "steal-phase: suspend",
            StealPhaseId::StackTransfer => "steal-phase: stack transfer",
            StealPhaseId::Unlock => "steal-phase: unlock",
            StealPhaseId::Resume => "steal-phase: resume",
        }
    }

    /// The bare phase name as `uat_core::StealPhase::name` spells it.
    pub fn phase_name(self) -> &'static str {
        self.name().trim_start_matches("steal-phase: ")
    }
}

/// Terminal states of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealOutcome {
    /// The thief took an entry and resumed the stolen thread.
    Completed,
    /// Aborted: the victim's queue looked empty.
    AbortEmpty,
    /// Aborted: the victim's queue was locked by someone else.
    AbortLock,
    /// Aborted: locked successfully but the queue had drained (race).
    AbortRaced,
}

impl StealOutcome {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StealOutcome::Completed => "completed",
            StealOutcome::AbortEmpty => "abort-empty",
            StealOutcome::AbortLock => "abort-lock",
            StealOutcome::AbortRaced => "abort-raced",
        }
    }
}

/// RDMA verb, as the fabric layer classifies operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RdmaOpKind {
    /// One-sided remote read.
    Read,
    /// One-sided remote write.
    Write,
    /// Software-emulated fetch-and-add via the comm server.
    FetchAdd,
}

impl RdmaOpKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RdmaOpKind::Read => "rdma-read",
            RdmaOpKind::Write => "rdma-write",
            RdmaOpKind::FetchAdd => "rdma-faa",
        }
    }
}
