//! Exporters: Chrome trace-event JSON (openable in Perfetto / `chrome://tracing`)
//! and JSONL.
//!
//! The Chrome format is the "JSON Array Format" with an object wrapper:
//! `{"traceEvents": [...]}`. One track (`tid`) per worker, all under
//! `pid` 0. Spans are `"ph":"X"` complete events; zero-duration records
//! become `"ph":"i"` instants. Timestamps are microseconds, converted
//! from simulated cycles with the run's clock; every event also carries
//! the exact cycle values in `args` so tooling (and the test suite) can
//! cross-check without float rounding.

use crate::{Bucket, EventKind, RingBuffer, TraceEvent};
use uat_base::json::Json;
use uat_base::Cycles;

/// Everything a traced run produced, ready for export.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Simulated core clock, for cycle→µs conversion.
    pub clock_hz: f64,
    /// Per-worker engine-level events, indexed by worker id.
    pub workers: Vec<RingBuffer>,
    /// Fabric-level RDMA events (worker field = initiating worker).
    pub fabric: Vec<TraceEvent>,
    /// The run's makespan, exported as trace metadata.
    pub makespan: Cycles,
}

impl TraceData {
    /// Total events across all sources.
    pub fn event_count(&self) -> usize {
        self.workers.iter().map(RingBuffer::len).sum::<usize>() + self.fabric.len()
    }

    /// Events evicted from full rings before export.
    pub fn dropped(&self) -> u64 {
        self.workers.iter().map(RingBuffer::dropped).sum()
    }

    /// Iterate over every exported event.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.workers
            .iter()
            .flat_map(RingBuffer::iter)
            .chain(self.fabric.iter())
    }

    /// Sum of `dur` over steal-phase events, by phase index
    /// (protocol order, as in `StealPhaseId::ALL`).
    pub fn steal_phase_totals(&self) -> [u64; 7] {
        let mut totals = [0u64; 7];
        for ev in self.events() {
            if let EventKind::StealPhase { phase, .. } = ev.kind {
                let idx = crate::StealPhaseId::ALL
                    .iter()
                    .position(|&p| p == phase)
                    .unwrap();
                totals[idx] += ev.dur.get();
            }
        }
        totals
    }

    /// Sum of `dur` over timeline slices charged to `bucket`, per worker.
    pub fn slice_totals(&self, bucket: Bucket) -> Vec<u64> {
        let mut totals = vec![0u64; self.workers.len()];
        for (w, ring) in self.workers.iter().enumerate() {
            for ev in ring.iter() {
                if let EventKind::Slice { bucket: b } = ev.kind {
                    if b == bucket {
                        totals[w] += ev.dur.get();
                    }
                }
            }
        }
        totals
    }
}

fn micros(c: Cycles, clock_hz: f64) -> Json {
    Json::Num(c.get() as f64 / clock_hz * 1e6)
}

fn event_args(ev: &TraceEvent) -> Vec<(String, Json)> {
    let mut args: Vec<(String, Json)> = vec![
        ("cycles".into(), Json::UInt(ev.at.get())),
        ("dur_cycles".into(), Json::UInt(ev.dur.get())),
    ];
    match ev.kind {
        EventKind::TaskBegin { task }
        | EventKind::Suspend { task }
        | EventKind::Resume { task } => {
            args.push(("task".into(), Json::UInt(task)));
        }
        EventKind::TaskEnd { task, run } => {
            args.push(("task".into(), Json::UInt(task)));
            args.push(("run_cycles".into(), Json::UInt(run.get())));
        }
        EventKind::Spawn { parent, child } => {
            args.push(("parent".into(), Json::UInt(parent)));
            args.push(("child".into(), Json::UInt(child)));
        }
        EventKind::Slice { .. } | EventKind::IdlePoll => {}
        EventKind::StealPhase { victim, .. } => {
            args.push(("victim".into(), Json::UInt(victim.0 as u64)));
        }
        EventKind::StealResult { victim, outcome } => {
            args.push(("victim".into(), Json::UInt(victim.0 as u64)));
            args.push(("outcome".into(), Json::str(outcome.name())));
        }
        EventKind::FaaQueueWait { wait } => {
            args.push(("wait_cycles".into(), Json::UInt(wait.get())));
        }
        EventKind::RdmaOp { target, bytes, .. } => {
            args.push(("target_node".into(), Json::UInt(target.0 as u64)));
            args.push(("bytes".into(), Json::UInt(bytes)));
        }
    }
    args
}

fn chrome_event(ev: &TraceEvent, clock_hz: f64) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::str(ev.kind.name())),
        ("cat".into(), Json::str(ev.kind.category())),
        ("pid".into(), Json::UInt(0)),
        ("tid".into(), Json::UInt(ev.worker.0 as u64)),
        ("ts".into(), micros(ev.at, clock_hz)),
    ];
    if ev.dur.get() > 0 {
        fields.insert(1, ("ph".into(), Json::str("X")));
        fields.push(("dur".into(), micros(ev.dur, clock_hz)));
    } else {
        fields.insert(1, ("ph".into(), Json::str("i")));
        // Instant scope: thread.
        fields.push(("s".into(), Json::str("t")));
    }
    fields.push(("args".into(), Json::Obj(event_args(ev))));
    Json::Obj(fields)
}

fn metadata(name: &str, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("M")),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(tid)),
        ("args", Json::obj([("name", Json::str(value))])),
    ])
}

/// Build the Chrome trace-event document for a traced run.
pub fn chrome_trace(data: &TraceData) -> Json {
    let mut events = Vec::with_capacity(data.event_count() + data.workers.len() + 2);
    events.push(metadata("process_name", 0, "uni-address simulator"));
    for (w, ring) in data.workers.iter().enumerate() {
        let label = if ring.dropped() > 0 {
            format!("worker {w} ({} events dropped)", ring.dropped())
        } else {
            format!("worker {w}")
        };
        events.push(metadata("thread_name", w as u64, &label));
    }
    for ev in data.events() {
        events.push(chrome_event(ev, data.clock_hz));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        (
            "otherData",
            Json::obj([
                ("clock_hz", Json::Num(data.clock_hz)),
                ("makespan_cycles", Json::UInt(data.makespan.get())),
                ("dropped_events", Json::UInt(data.dropped())),
            ]),
        ),
    ])
}

/// Serialize a traced run as a Chrome trace-event JSON string.
pub fn chrome_trace_json(data: &TraceData) -> String {
    chrome_trace(data).to_string()
}

/// Render values as JSON Lines (one compact document per line).
pub fn jsonl<I: IntoIterator<Item = Json>>(lines: I) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RingSink, StealPhaseId, TraceSink};
    use uat_base::{NodeId, WorkerId};

    fn sample_data() -> TraceData {
        let mut sink = RingSink::new(2, 64);
        sink.record(TraceEvent::span(
            Cycles(0),
            Cycles(1_000),
            WorkerId(0),
            EventKind::Slice {
                bucket: Bucket::Work,
            },
        ));
        sink.record(TraceEvent::instant(
            Cycles(1_000),
            WorkerId(0),
            EventKind::Spawn {
                parent: 1,
                child: 2,
            },
        ));
        sink.record(TraceEvent::span(
            Cycles(500),
            Cycles(300),
            WorkerId(1),
            EventKind::StealPhase {
                victim: WorkerId(0),
                phase: StealPhaseId::Lock,
            },
        ));
        TraceData {
            clock_hz: 1.848e9,
            workers: sink.into_rings(),
            fabric: vec![TraceEvent::span(
                Cycles(600),
                Cycles(120),
                WorkerId(1),
                EventKind::RdmaOp {
                    op: crate::RdmaOpKind::FetchAdd,
                    target: NodeId(0),
                    bytes: 8,
                },
            )],
            makespan: Cycles(2_000),
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let data = sample_data();
        let text = chrome_trace_json(&data);
        let doc = Json::parse(&text).expect("exporter must emit valid JSON");
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 4 events.
        assert_eq!(events.len(), 7);
        let phases: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").map(|c| c.as_str().unwrap()) == Some("steal"))
            .collect();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(
            phases[0]
                .field("args")
                .unwrap()
                .field("dur_cycles")
                .unwrap()
                .as_u64()
                .unwrap(),
            300
        );
        assert_eq!(
            doc.field("otherData")
                .unwrap()
                .field("makespan_cycles")
                .unwrap()
                .as_u64()
                .unwrap(),
            2_000
        );
    }

    #[test]
    fn instants_use_instant_phase() {
        let data = sample_data();
        let doc = chrome_trace(&data);
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        let spawn = events
            .iter()
            .find(|e| e.get("name").map(|n| n.as_str().unwrap()) == Some("spawn"))
            .unwrap();
        assert_eq!(spawn.field("ph").unwrap().as_str().unwrap(), "i");
        assert_eq!(spawn.field("s").unwrap().as_str().unwrap(), "t");
    }

    #[test]
    fn steal_phase_totals_sum_durations() {
        let data = sample_data();
        let totals = data.steal_phase_totals();
        let lock_idx = StealPhaseId::ALL
            .iter()
            .position(|&p| p == StealPhaseId::Lock)
            .unwrap();
        assert_eq!(totals[lock_idx], 300);
        assert_eq!(totals.iter().sum::<u64>(), 300);
    }

    #[test]
    fn jsonl_is_one_document_per_line() {
        let text = jsonl(vec![Json::UInt(1), Json::obj([("a", Json::Bool(true))])]);
        let mut lines = text.lines();
        assert_eq!(Json::parse(lines.next().unwrap()).unwrap(), Json::UInt(1));
        assert!(Json::parse(lines.next().unwrap()).is_ok());
        assert!(lines.next().is_none());
    }
}
