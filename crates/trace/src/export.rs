//! Exporters: Chrome trace-event JSON (openable in Perfetto / `chrome://tracing`)
//! and JSONL.
//!
//! The Chrome format is the "JSON Array Format" with an object wrapper:
//! `{"traceEvents": [...]}`. One track (`tid`) per worker, all under
//! `pid` 0. Spans are `"ph":"X"` complete events; zero-duration records
//! become `"ph":"i"` instants. Timestamps are microseconds, converted
//! from simulated cycles with the run's clock; every event also carries
//! the exact cycle values in `args` so tooling (and the test suite) can
//! cross-check without float rounding.

use crate::{Bucket, EventKind, RingBuffer, TraceEvent};
use serde::{Deserialize, Serialize};
use uat_base::json::Json;
use uat_base::Cycles;

/// Where a trace's timestamps came from. Exported in the trace
/// metadata so a consumer never has to guess whether "cycles" means
/// simulated cost-model cycles, hardware TSC ticks, or a calibrated
/// `Instant`-based fallback (satellite of the native-tracing work:
/// hosts without a usable TSC get honest metadata, not garbage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockSource {
    /// Deterministic simulator cycles from the cost model.
    Simulated,
    /// Hardware timestamp counter (`rdtsc`), calibrated against the OS
    /// monotonic clock and re-based to the run's epoch.
    Tsc,
    /// `std::time::Instant` deltas converted to cycles at the calibrated
    /// rate — the fallback when the TSC is unavailable or unusable.
    Instant,
}

impl ClockSource {
    /// Display name, used in exported metadata.
    pub fn name(self) -> &'static str {
        match self {
            ClockSource::Simulated => "simulated",
            ClockSource::Tsc => "tsc",
            ClockSource::Instant => "instant",
        }
    }
}

/// Everything a traced run produced, ready for export.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Core clock in Hz (simulated cost-model clock, or the calibrated
    /// native TSC rate), for cycle→µs conversion.
    pub clock_hz: f64,
    /// What physical (or simulated) clock stamped the events.
    pub clock_source: ClockSource,
    /// Per-worker engine-level events, indexed by worker id.
    pub workers: Vec<RingBuffer>,
    /// Fabric-level RDMA events (worker field = initiating worker).
    pub fabric: Vec<TraceEvent>,
    /// The run's makespan, exported as trace metadata.
    pub makespan: Cycles,
}

impl TraceData {
    /// Total events across all sources.
    pub fn event_count(&self) -> usize {
        self.workers.iter().map(RingBuffer::len).sum::<usize>() + self.fabric.len()
    }

    /// Events evicted from full rings before export.
    pub fn dropped(&self) -> u64 {
        self.workers.iter().map(RingBuffer::dropped).sum()
    }

    /// Iterate over every exported event.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.workers
            .iter()
            .flat_map(RingBuffer::iter)
            .chain(self.fabric.iter())
    }

    /// Sum of `dur` over steal-phase events, by phase index
    /// (protocol order, as in `StealPhaseId::ALL`).
    pub fn steal_phase_totals(&self) -> [u64; 7] {
        let mut totals = [0u64; 7];
        for ev in self.events() {
            if let EventKind::StealPhase { phase, .. } = ev.kind {
                let idx = crate::StealPhaseId::ALL
                    .iter()
                    .position(|&p| p == phase)
                    .unwrap();
                totals[idx] += ev.dur.get();
            }
        }
        totals
    }

    /// Sum of `dur` over timeline slices charged to `bucket`, per worker.
    pub fn slice_totals(&self, bucket: Bucket) -> Vec<u64> {
        let mut totals = vec![0u64; self.workers.len()];
        for (w, ring) in self.workers.iter().enumerate() {
            for ev in ring.iter() {
                if let EventKind::Slice { bucket: b } = ev.kind {
                    if b == bucket {
                        totals[w] += ev.dur.get();
                    }
                }
            }
        }
        totals
    }
}

fn micros(c: Cycles, clock_hz: f64) -> Json {
    Json::Num(c.get() as f64 / clock_hz * 1e6)
}

fn event_args(ev: &TraceEvent) -> Vec<(String, Json)> {
    let mut args: Vec<(String, Json)> = vec![
        ("cycles".into(), Json::UInt(ev.at.get())),
        ("dur_cycles".into(), Json::UInt(ev.dur.get())),
    ];
    match ev.kind {
        EventKind::TaskBegin { task }
        | EventKind::Suspend { task }
        | EventKind::Resume { task } => {
            args.push(("task".into(), Json::UInt(task)));
        }
        EventKind::TaskEnd { task, run } => {
            args.push(("task".into(), Json::UInt(task)));
            args.push(("run_cycles".into(), Json::UInt(run.get())));
        }
        EventKind::Spawn { parent, child } => {
            args.push(("parent".into(), Json::UInt(parent)));
            args.push(("child".into(), Json::UInt(child)));
        }
        EventKind::Slice { .. } | EventKind::IdlePoll | EventKind::Park | EventKind::Unpark => {}
        EventKind::StealPhase { victim, .. } => {
            args.push(("victim".into(), Json::UInt(victim.0 as u64)));
        }
        EventKind::StealResult {
            victim,
            outcome,
            latency,
        } => {
            args.push(("victim".into(), Json::UInt(victim.0 as u64)));
            args.push(("outcome".into(), Json::str(outcome.name())));
            args.push(("latency_cycles".into(), Json::UInt(latency.get())));
        }
        EventKind::DequePublish { task, seq } | EventKind::StealCommit { task, seq } => {
            args.push(("task".into(), Json::UInt(task)));
            args.push(("seq".into(), Json::UInt(seq)));
        }
        EventKind::JoinReady { parent, child } | EventKind::JoinResume { parent, child } => {
            args.push(("parent".into(), Json::UInt(parent)));
            args.push(("child".into(), Json::UInt(child)));
        }
        EventKind::FaaQueueWait { wait, server } => {
            args.push(("wait_cycles".into(), Json::UInt(wait.get())));
            args.push(("server_node".into(), Json::UInt(server.0 as u64)));
        }
        EventKind::RdmaOp { target, bytes, .. } => {
            args.push(("target_node".into(), Json::UInt(target.0 as u64)));
            args.push(("bytes".into(), Json::UInt(bytes)));
        }
    }
    args
}

fn chrome_event(ev: &TraceEvent, clock_hz: f64) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::str(ev.kind.name())),
        ("cat".into(), Json::str(ev.kind.category())),
        ("pid".into(), Json::UInt(0)),
        ("tid".into(), Json::UInt(ev.worker.0 as u64)),
        ("ts".into(), micros(ev.at, clock_hz)),
    ];
    if ev.dur.get() > 0 {
        fields.insert(1, ("ph".into(), Json::str("X")));
        fields.push(("dur".into(), micros(ev.dur, clock_hz)));
    } else {
        fields.insert(1, ("ph".into(), Json::str("i")));
        // Instant scope: thread.
        fields.push(("s".into(), Json::str("t")));
    }
    fields.push(("args".into(), Json::Obj(event_args(ev))));
    Json::Obj(fields)
}

/// One endpoint of a Perfetto flow arrow (`ph` is `"s"` at the start,
/// `"f"` at the finish; the shared `id` links the pair).
fn flow_event(ph: &str, seq: u64, worker: u64, at: Cycles, clock_hz: f64) -> Json {
    let mut fields = vec![
        ("name".into(), Json::str("steal")),
        ("cat".into(), Json::str("steal-flow")),
        ("ph".into(), Json::str(ph)),
        ("id".into(), Json::UInt(seq)),
        ("pid".into(), Json::UInt(0)),
        ("tid".into(), Json::UInt(worker)),
        ("ts".into(), micros(at, clock_hz)),
    ];
    if ph == "f" {
        // Bind to the enclosing slice at the arrowhead, per the trace
        // event format spec.
        fields.push(("bp".into(), Json::str("e")));
    }
    Json::Obj(fields)
}

/// Flow-arrow pairs for every completed steal: an `"s"` event on the
/// victim's track at the deque publish and an `"f"` event on the
/// thief's track at the resume of the stolen thread. Perfetto renders
/// these as arrows, making each steal's provenance visible.
fn steal_flows(data: &TraceData, out: &mut Vec<Json>) {
    let mut publishes: std::collections::HashMap<u64, (u64, Cycles)> =
        std::collections::HashMap::new();
    for ev in data.events() {
        if let EventKind::DequePublish { seq, .. } = ev.kind {
            publishes.insert(seq, (ev.worker.0 as u64, ev.at));
        }
    }
    for ev in data.events() {
        if let EventKind::StealCommit { seq, .. } = ev.kind {
            if let Some(&(victim, at)) = publishes.get(&seq) {
                out.push(flow_event("s", seq, victim, at, data.clock_hz));
                out.push(flow_event(
                    "f",
                    seq,
                    ev.worker.0 as u64,
                    ev.at,
                    data.clock_hz,
                ));
            }
        }
    }
}

fn metadata(name: &str, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("M")),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(tid)),
        ("args", Json::obj([("name", Json::str(value))])),
    ])
}

/// Build the Chrome trace-event document for a traced run.
pub fn chrome_trace(data: &TraceData) -> Json {
    let mut events = Vec::with_capacity(data.event_count() + data.workers.len() + 2);
    events.push(metadata("process_name", 0, "uni-address simulator"));
    for (w, ring) in data.workers.iter().enumerate() {
        let label = if ring.dropped() > 0 {
            format!("worker {w} ({} events dropped)", ring.dropped())
        } else {
            format!("worker {w}")
        };
        events.push(metadata("thread_name", w as u64, &label));
    }
    for ev in data.events() {
        events.push(chrome_event(ev, data.clock_hz));
    }
    steal_flows(data, &mut events);
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        (
            "otherData",
            Json::obj([
                ("clock_hz", Json::Num(data.clock_hz)),
                ("clock_source", Json::str(data.clock_source.name())),
                ("makespan_cycles", Json::UInt(data.makespan.get())),
                ("dropped_events", Json::UInt(data.dropped())),
            ]),
        ),
    ])
}

/// Serialize a traced run as a Chrome trace-event JSON string.
pub fn chrome_trace_json(data: &TraceData) -> String {
    chrome_trace(data).to_string()
}

/// Chrome trace for an audit flight recording: the regular export with
/// the violation message added to `otherData` (Perfetto surfaces it in
/// the trace-info dialog), so the post-mortem file is self-describing.
pub fn flight_trace_json(data: &TraceData, violation: &str) -> String {
    let mut doc = chrome_trace(data);
    if let Json::Obj(members) = &mut doc {
        if let Some((_, Json::Obj(other))) = members.iter_mut().find(|(k, _)| k == "otherData") {
            other.push(("audit_violation".into(), Json::str(violation)));
        }
    }
    doc.to_string()
}

/// Render values as JSON Lines (one compact document per line).
pub fn jsonl<I: IntoIterator<Item = Json>>(lines: I) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RingSink, StealPhaseId, TraceSink};
    use uat_base::{NodeId, WorkerId};

    fn sample_data() -> TraceData {
        let mut sink = RingSink::new(2, 64);
        sink.record(TraceEvent::span(
            Cycles(0),
            Cycles(1_000),
            WorkerId(0),
            EventKind::Slice {
                bucket: Bucket::Work,
            },
        ));
        sink.record(TraceEvent::instant(
            Cycles(1_000),
            WorkerId(0),
            EventKind::Spawn {
                parent: 1,
                child: 2,
            },
        ));
        sink.record(TraceEvent::span(
            Cycles(500),
            Cycles(300),
            WorkerId(1),
            EventKind::StealPhase {
                victim: WorkerId(0),
                phase: StealPhaseId::Lock,
            },
        ));
        TraceData {
            clock_hz: 1.848e9,
            clock_source: ClockSource::Simulated,
            workers: sink.into_rings(),
            fabric: vec![TraceEvent::span(
                Cycles(600),
                Cycles(120),
                WorkerId(1),
                EventKind::RdmaOp {
                    op: crate::RdmaOpKind::FetchAdd,
                    target: NodeId(0),
                    bytes: 8,
                },
            )],
            makespan: Cycles(2_000),
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let data = sample_data();
        let text = chrome_trace_json(&data);
        let doc = Json::parse(&text).expect("exporter must emit valid JSON");
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 4 events.
        assert_eq!(events.len(), 7);
        let phases: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").map(|c| c.as_str().unwrap()) == Some("steal"))
            .collect();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(
            phases[0]
                .field("args")
                .unwrap()
                .field("dur_cycles")
                .unwrap()
                .as_u64()
                .unwrap(),
            300
        );
        assert_eq!(
            doc.field("otherData")
                .unwrap()
                .field("makespan_cycles")
                .unwrap()
                .as_u64()
                .unwrap(),
            2_000
        );
        assert_eq!(
            doc.field("otherData")
                .unwrap()
                .field("clock_source")
                .unwrap()
                .as_str()
                .unwrap(),
            "simulated"
        );
    }

    #[test]
    fn instants_use_instant_phase() {
        let data = sample_data();
        let doc = chrome_trace(&data);
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        let spawn = events
            .iter()
            .find(|e| e.get("name").map(|n| n.as_str().unwrap()) == Some("spawn"))
            .unwrap();
        assert_eq!(spawn.field("ph").unwrap().as_str().unwrap(), "i");
        assert_eq!(spawn.field("s").unwrap().as_str().unwrap(), "t");
    }

    #[test]
    fn steal_phase_totals_sum_durations() {
        let data = sample_data();
        let totals = data.steal_phase_totals();
        let lock_idx = StealPhaseId::ALL
            .iter()
            .position(|&p| p == StealPhaseId::Lock)
            .unwrap();
        assert_eq!(totals[lock_idx], 300);
        assert_eq!(totals.iter().sum::<u64>(), 300);
    }

    #[test]
    fn completed_steals_get_flow_arrow_pairs() {
        let mut data = sample_data();
        let mut sink = RingSink::new(2, 64);
        for ring in data.workers.drain(..) {
            drop(ring);
        }
        sink.record(TraceEvent::instant(
            Cycles(400),
            WorkerId(0),
            EventKind::DequePublish { task: 9, seq: 3 },
        ));
        sink.record(TraceEvent::instant(
            Cycles(900),
            WorkerId(1),
            EventKind::StealCommit { task: 9, seq: 3 },
        ));
        // An unmatched publication produces no dangling arrow.
        sink.record(TraceEvent::instant(
            Cycles(950),
            WorkerId(0),
            EventKind::DequePublish { task: 11, seq: 4 },
        ));
        data.workers = sink.into_rings();
        let doc = chrome_trace(&data);
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        let flows: Vec<&Json> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.get("ph").and_then(|p| p.as_str().ok()),
                    Some("s") | Some("f")
                )
            })
            .collect();
        assert_eq!(flows.len(), 2);
        let start = flows
            .iter()
            .find(|e| e.field("ph").unwrap().as_str().unwrap() == "s")
            .unwrap();
        let finish = flows
            .iter()
            .find(|e| e.field("ph").unwrap().as_str().unwrap() == "f")
            .unwrap();
        assert_eq!(start.field("id").unwrap().as_u64().unwrap(), 3);
        assert_eq!(finish.field("id").unwrap().as_u64().unwrap(), 3);
        assert_eq!(start.field("tid").unwrap().as_u64().unwrap(), 0);
        assert_eq!(finish.field("tid").unwrap().as_u64().unwrap(), 1);
        assert_eq!(finish.field("bp").unwrap().as_str().unwrap(), "e");
    }

    #[test]
    fn flight_export_carries_the_violation() {
        let data = sample_data();
        let doc = Json::parse(&flight_trace_json(&data, "audit: boom")).unwrap();
        assert_eq!(
            doc.field("otherData")
                .unwrap()
                .field("audit_violation")
                .unwrap()
                .as_str()
                .unwrap(),
            "audit: boom"
        );
        // Still a regular Chrome trace underneath.
        assert!(doc.field("traceEvents").unwrap().as_arr().unwrap().len() > 1);
    }

    #[test]
    fn jsonl_is_one_document_per_line() {
        let text = jsonl(vec![Json::UInt(1), Json::obj([("a", Json::Bool(true))])]);
        let mut lines = text.lines();
        assert_eq!(Json::parse(lines.next().unwrap()).unwrap(), Json::UInt(1));
        assert!(Json::parse(lines.next().unwrap()).is_ok());
        assert!(lines.next().is_none());
    }
}
