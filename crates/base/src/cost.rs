//! Calibrated cycle-cost model.
//!
//! Every timed operation in the simulator draws its cost from a
//! [`CostModel`]. The default profile, [`CostModel::fx10`], is calibrated
//! to the numbers the paper reports for the Fujitsu PRIMEHPC FX10
//! (SPARC64IXfx @ 1.848 GHz, Tofu interconnect):
//!
//! | quantity | paper | model |
//! |---|---|---|
//! | task creation overhead | 413 cycles (Table 2) | `spawn_cost()` |
//! | software remote fetch-and-add | 9.8K cycles (§6) | `remote_faa_cost()` |
//! | page fault | 21K cycles (§4/§6.3) | `page_fault` |
//! | suspend + resume | 3.5K cycles (§6.3) | `suspend_base + resume_base + copies` |
//! | whole steal of a 3055-byte stack | ≈42K cycles (Fig 10) | sum of phases |
//!
//! The [`CostModel::xeon`] profile mirrors the paper's Xeon E5-2660 column
//! of Table 2 (100-cycle creation). All fields are public so ablation
//! benches can perturb individual constants.

use crate::time::Cycles;
use serde::{Deserialize, Serialize};

/// Cycle costs of the primitive operations of the runtime and fabric.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Core clock in Hz (for converting cycles to seconds in reports).
    pub clock_hz: f64,

    // --- interconnect (Figure 9 shape: base + size/bandwidth) ---
    /// Base latency of an RDMA READ round trip, in cycles.
    pub rdma_read_base: u64,
    /// Base latency of an RDMA WRITE (posted, remote completion), cycles.
    pub rdma_write_base: u64,
    /// Payload cost: bytes transferred per cycle (link bandwidth / clock).
    pub rdma_bytes_per_cycle: f64,
    /// Extra base latency for inter-node vs intra-node ops, cycles.
    /// Intra-node "RDMA" on FX10 still crosses the NIC loopback; the
    /// discount below reflects the shorter path.
    pub intra_node_discount: f64,

    // --- software fetch-and-add (comm server) ---
    /// One-way latency of "RDMA WRITE with remote notice" used to carry a
    /// FAA request or response, cycles.
    pub faa_notice_latency: u64,
    /// Comm-server service time per FAA request, cycles.
    pub faa_service: u64,
    /// If true, model a hardware NIC-side fetch-and-add instead of the
    /// software comm server (ablation `ablation_faa`).
    pub hardware_faa: bool,
    /// Latency of the hypothetical hardware FAA, cycles.
    pub hardware_faa_latency: u64,

    // --- memory system ---
    /// Cost of a minor page fault (first touch of a reserved page); the
    /// paper measures 21K cycles on SPARC64IXfx.
    pub page_fault: u64,
    /// Local memcpy throughput, bytes per cycle.
    pub memcpy_bytes_per_cycle: f64,

    // --- thread management ---
    /// Saving callee-saved registers + parent bookkeeping at spawn
    /// (`save_context_and_call`, Figure 4 / Appendix A).
    pub ctx_save: u64,
    /// Pushing a task-queue entry (local THE push, no lock).
    pub deque_push: u64,
    /// Popping a task-queue entry (local THE pop, fast path).
    pub deque_pop: u64,
    /// Restoring a context (`resume_context`).
    pub ctx_restore: u64,
    /// Fixed part of `suspend()` besides the stack copy-out (Figure 8).
    pub suspend_base: u64,
    /// Fixed part of resuming a saved context besides the copy-in.
    pub resume_base: u64,
    /// `try_join` fast-path check.
    pub try_join: u64,
    /// Cost of one scheduler-loop iteration that finds nothing to do.
    pub idle_poll: u64,
    /// Call/return glue in `save_context_and_call` not covered by the
    /// register save or deque traffic: the indirect call, frame setup, and
    /// the fence separating the push from the child body. Completes the
    /// Table 2 creation total (`spawn_cost`) and prices the pop-side glue
    /// when a completed child returns to a present parent.
    pub call_glue: u64,
    /// Backoff + re-check spin after losing a THE pop race to a thief
    /// (owner sees the lock held and retries the slow path).
    pub contended_retry: u64,
}

impl CostModel {
    /// FX10 / SPARC64IXfx profile (the paper's main platform).
    pub fn fx10() -> Self {
        CostModel {
            clock_hz: 1.848e9,
            rdma_read_base: 4_900,
            rdma_write_base: 3_000,
            rdma_bytes_per_cycle: 2.0,
            intra_node_discount: 0.55,
            faa_notice_latency: 4_200,
            faa_service: 1_400,
            hardware_faa: false,
            hardware_faa_latency: 3_000,
            page_fault: 21_000,
            memcpy_bytes_per_cycle: 8.0,
            // 413-cycle creation = ctx_save + deque_push + deque_pop + call glue.
            ctx_save: 180,
            deque_push: 95,
            deque_pop: 95,
            ctx_restore: 120,
            suspend_base: 1_500,
            resume_base: 1_400,
            try_join: 25,
            idle_poll: 200,
            call_glue: 43,
            contended_retry: 200,
        }
    }

    /// Xeon E5-2660 profile (the paper's single-node x86 comparison).
    pub fn xeon() -> Self {
        CostModel {
            clock_hz: 2.2e9,
            // No Tofu NIC on the Xeon box; these matter only if a cluster
            // simulation is (artificially) run with this profile.
            rdma_read_base: 3_600,
            rdma_write_base: 2_400,
            rdma_bytes_per_cycle: 4.0,
            intra_node_discount: 0.55,
            faa_notice_latency: 3_000,
            faa_service: 900,
            hardware_faa: false,
            hardware_faa_latency: 2_000,
            page_fault: 4_000,
            memcpy_bytes_per_cycle: 16.0,
            // 100-cycle creation on x86 (Table 2).
            ctx_save: 40,
            deque_push: 22,
            deque_pop: 22,
            ctx_restore: 30,
            suspend_base: 500,
            resume_base: 450,
            try_join: 10,
            idle_poll: 80,
            call_glue: 43,
            contended_retry: 200,
        }
    }

    /// Latency of an RDMA READ of `bytes`, cycles.
    #[inline]
    pub fn rdma_read(&self, bytes: usize, intra_node: bool) -> Cycles {
        self.fabric_latency(self.rdma_read_base, bytes, intra_node)
    }

    /// Latency of an RDMA WRITE of `bytes`, cycles.
    #[inline]
    pub fn rdma_write(&self, bytes: usize, intra_node: bool) -> Cycles {
        self.fabric_latency(self.rdma_write_base, bytes, intra_node)
    }

    #[inline]
    fn fabric_latency(&self, base: u64, bytes: usize, intra_node: bool) -> Cycles {
        let base = if intra_node {
            (base as f64 * self.intra_node_discount) as u64
        } else {
            base
        };
        Cycles(base + (bytes as f64 / self.rdma_bytes_per_cycle) as u64)
    }

    /// End-to-end latency of a remote fetch-and-add as seen by the issuer,
    /// *excluding* any queueing delay at the comm server (the simulator
    /// adds queueing explicitly).
    ///
    /// Software path: request notice + service + response notice
    /// = 4.2K + 1.4K + 4.2K = 9.8K cycles, matching §6.
    #[inline]
    pub fn remote_faa_cost(&self) -> Cycles {
        if self.hardware_faa {
            Cycles(self.hardware_faa_latency)
        } else {
            Cycles(2 * self.faa_notice_latency + self.faa_service)
        }
    }

    /// Cost of a local memcpy of `bytes`.
    #[inline]
    pub fn memcpy(&self, bytes: usize) -> Cycles {
        Cycles((bytes as f64 / self.memcpy_bytes_per_cycle) as u64)
    }

    /// Total task-creation overhead on the fast path (Figure 4):
    /// save context, push the parent entry, call, pop the entry back.
    #[inline]
    pub fn spawn_cost(&self) -> Cycles {
        Cycles(self.ctx_save + self.deque_push + self.deque_pop + self.call_glue)
    }

    /// Cost of suspending a thread whose live frames total `stack_bytes`
    /// (context save + copy-out to the RDMA region, Figure 8).
    #[inline]
    pub fn suspend_cost(&self, stack_bytes: usize) -> Cycles {
        Cycles(self.suspend_base) + self.memcpy(stack_bytes)
    }

    /// Cost of resuming a saved context whose frames total `stack_bytes`
    /// (copy-in + register restore). Pass 0 when the frames are already in
    /// place (deque pop of an in-region parent).
    #[inline]
    pub fn resume_cost(&self, stack_bytes: usize) -> Cycles {
        Cycles(self.resume_base) + self.memcpy(stack_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::fx10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx10_creation_matches_table2() {
        let c = CostModel::fx10();
        assert_eq!(c.spawn_cost(), Cycles(413), "Table 2 SPARC column");
    }

    #[test]
    fn xeon_creation_matches_table2() {
        let c = CostModel::xeon();
        // Table 2: 100 cycles on Xeon E5-2660. 40+22+22+43 = 127; the paper
        // value is 100 — we accept the same order (the native crate measures
        // the real number). Keep the modelled value within 30%.
        let v = c.spawn_cost().get() as f64;
        assert!((v - 100.0).abs() / 100.0 < 0.3, "got {v}");
    }

    #[test]
    fn software_faa_matches_9_8k() {
        let c = CostModel::fx10();
        assert_eq!(c.remote_faa_cost(), Cycles(9_800));
    }

    #[test]
    fn hardware_faa_is_cheaper() {
        let mut c = CostModel::fx10();
        c.hardware_faa = true;
        assert!(c.remote_faa_cost() < CostModel::fx10().remote_faa_cost());
    }

    #[test]
    fn suspend_plus_resume_near_3_5k() {
        // §6.3: suspend+resume = 3.5K cycles for a 3055-byte stack.
        let c = CostModel::fx10();
        let total = c.suspend_cost(3055) + c.resume_cost(3055);
        let v = total.get() as f64;
        assert!((v - 3500.0).abs() / 3500.0 < 0.15, "got {v}");
    }

    #[test]
    fn latency_monotone_in_size() {
        let c = CostModel::fx10();
        let mut prev = Cycles::ZERO;
        for sz in [8usize, 64, 512, 4096, 32768, 262_144, 1 << 20] {
            let l = c.rdma_read(sz, false);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn intra_node_is_faster() {
        let c = CostModel::fx10();
        assert!(c.rdma_read(256, true) < c.rdma_read(256, false));
        assert!(c.rdma_write(256, true) < c.rdma_write(256, false));
    }

    #[test]
    fn steal_breakdown_totals_near_42k() {
        // Reconstruct Figure 10's phases for a 3055-byte stack and check
        // the total is in the paper's ballpark (42K cycles ± 20%).
        let c = CostModel::fx10();
        let entry = 48usize; // taskq entry size
        let total = c.rdma_read(8, false) // empty check
            + c.remote_faa_cost() // lock
            + c.rdma_read(entry, false) + c.rdma_read(entry, false) + c.rdma_write(8, false) // steal
            + c.suspend_cost(0) // thief-side suspend (empty region)
            + c.rdma_read(3055, false) // stack transfer
            + c.rdma_write(8, false) // unlock
            + c.resume_cost(0); // resume stolen ctx (already in place)
        let v = total.get() as f64;
        assert!((v - 42_000.0).abs() / 42_000.0 < 0.2, "got {v}");
    }
}
