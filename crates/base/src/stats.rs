//! Running statistics used by the experiment harnesses.
//!
//! The paper reports means with 95% confidence intervals (Section 6:
//! "Confidence intervals in the following figures are calculated with 95%
//! confidence level"), so [`OnlineStats`] exposes exactly that via
//! Welford's algorithm, plus a small fixed-bucket [`Histogram`] used for
//! latency breakdowns.

use crate::json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// Numerically stable single-pass mean/variance accumulator (Welford).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`]. (A derived all-zero default would
    /// seed `min` at 0.0 and drag every minimum down to it.)
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; NaN when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; NaN when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95% confidence interval of the mean
    /// (normal approximation; the paper's figures use the same).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.n as f64).sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            stddev: self.stddev(),
            ci95: self.ci95(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Immutable snapshot of an [`OnlineStats`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} ± {:.1} (n={}, min={:.1}, max={:.1})",
            self.mean, self.ci95, self.count, self.min, self.max
        )
    }
}

/// Power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also covers 0.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram covering the full u64 range (64 buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile; `q` in `[0, 1]` (clamped).
    ///
    /// For `q > 0` this returns the inclusive upper bound of the bucket
    /// containing the `ceil(q·n)`-th smallest observation; `q = 0`
    /// returns the lower bound of the first non-empty bucket (the
    /// tightest lower bound on the minimum the histogram can give).
    /// An empty histogram returns 0 for every `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            let first = self.buckets.iter().position(|&c| c > 0).unwrap();
            return Self::bucket_lower(first);
        }
        // ceil never rounds a value ≤ total above it, and q > 0 makes the
        // target at least 1, so the scan below always terminates inside
        // the loop; the fallthrough only guards float pathology.
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(63)
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Add every observation of `other` into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Compact snapshot (count plus p50/p90/p99/max bucket bounds).
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.total,
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            max: self.quantile(1.0),
        }
    }

    /// Iterate over non-empty `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), c))
    }
}

/// Compact quantile snapshot of a [`Histogram`].
///
/// Quantiles are bucket upper bounds (see [`Histogram::quantile`]), so
/// they over-estimate by at most 2× — good enough for the latency
/// distributions the tracing layer reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Median bucket bound.
    pub p50: u64,
    /// 90th-percentile bucket bound.
    pub p90: u64,
    /// 99th-percentile bucket bound.
    pub p99: u64,
    /// Bound of the bucket holding the largest observation.
    pub max: u64,
}

impl ToJson for HistSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("p50", Json::UInt(self.p50)),
            ("p90", Json::UInt(self.p90)),
            ("p99", Json::UInt(self.p99)),
            ("max", Json::UInt(self.max)),
        ])
    }
}

impl FromJson for HistSummary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(HistSummary {
            count: v.field("count")?.as_u64()?,
            p50: v.field("p50")?.as_u64()?,
            p90: v.field("p90")?.as_u64()?,
            p99: v.field("p99")?.as_u64()?,
            max: v.field("max")?.as_u64()?,
        })
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total", Json::UInt(self.total)),
            ("buckets", self.buckets.to_json()),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let buckets: Vec<u64> = Vec::from_json(v.field("buckets")?)?;
        if buckets.len() != 64 {
            return Err(JsonError {
                msg: format!("histogram needs 64 buckets, got {}", buckets.len()),
            });
        }
        Ok(Histogram {
            total: v.field("total")?.as_u64()?,
            buckets,
        })
    }
}

impl ToJson for OnlineStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::UInt(self.n)),
            ("mean", Json::Num(self.mean)),
            ("m2", Json::Num(self.m2)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
        ])
    }
}

impl FromJson for OnlineStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let n = v.field("n")?.as_u64()?;
        // An empty accumulator writes ±infinity min/max, which JSON
        // spells as null; re-seed them so the round trip is lossless.
        let (min, max) = if n == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (v.field("min")?.as_f64()?, v.field("max")?.as_f64()?)
        };
        Ok(OnlineStats {
            n,
            mean: v.field("mean")?.as_f64()?,
            m2: v.field("m2")?.as_f64()?,
            min,
            max,
        })
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("mean", Json::Num(self.mean)),
            ("stddev", Json::Num(self.stddev)),
            ("ci95", Json::Num(self.ci95)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            count: v.field("count")?.as_u64()?,
            mean: v.field("mean")?.as_f64()?,
            stddev: v.field("stddev")?.as_f64()?,
            ci95: v.field("ci95")?.as_f64()?,
            min: v.field("min")?.as_f64()?,
            max: v.field("max")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        let after = a.summary();
        assert_eq!(before.count, after.count);
        assert_eq!(before.mean, after.mean);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut r = crate::SplitMix64::new(1);
        for i in 0..10_000 {
            let x = r.next_f64();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        // Median falls in the [2,4) or [4,8) region for this data.
        let q50 = h.quantile(0.5);
        assert!((3..=7).contains(&q50), "q50={q50}");
        assert!(h.quantile(1.0) >= 1024);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert!(buckets.iter().any(|&(lo, _)| lo == 1024));
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn histogram_quantile_zero_is_min_bound() {
        let mut h = Histogram::new();
        h.record(100); // bucket [64, 128)
        h.record(5000); // bucket [4096, 8192)
        assert_eq!(h.quantile(0.0), 64);

        let mut zeros = Histogram::new();
        zeros.record(0);
        assert_eq!(zeros.quantile(0.0), 0);
    }

    #[test]
    fn histogram_quantile_one_is_max_bucket_bound() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        // 100 lives in [64, 128); its inclusive upper bound is 127.
        assert_eq!(h.quantile(1.0), 127);
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_single_bucket() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(33); // bucket [32, 64)
        }
        assert_eq!(h.quantile(0.0), 32);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 63, "q={q}");
        }
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.max), (10, 63, 63));
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut r = crate::SplitMix64::new(7);
        for _ in 0..1000 {
            h.record(r.next_u64() >> (r.next_u64() % 64));
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at {i}%");
            prev = q;
        }
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1u64, 9, 70, 300] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 8000, 1 << 40] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn stats_json_round_trip() {
        use crate::json::{FromJson, Json, ToJson};

        let mut s = OnlineStats::new();
        for x in [1.0, 2.5, -3.0, 42.0] {
            s.push(x);
        }
        let back = OnlineStats::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean(), s.mean());
        assert_eq!(back.variance(), s.variance());
        assert_eq!(back.min(), s.min());
        assert_eq!(back.max(), s.max());

        let empty = OnlineStats::from_json(
            &Json::parse(&OnlineStats::new().to_json().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(empty.count(), 0);
        assert!(empty.min().is_nan());

        let mut h = Histogram::new();
        for v in [0u64, 3, 900, u64::MAX] {
            h.record(v);
        }
        let hb = Histogram::from_json(&Json::parse(&h.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(hb.count(), h.count());
        assert_eq!(hb.quantile(1.0), h.quantile(1.0));

        let sum = h.summary();
        let sb = HistSummary::from_json(&Json::parse(&sum.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(sb, sum);
    }
}
