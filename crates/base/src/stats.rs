//! Running statistics used by the experiment harnesses.
//!
//! The paper reports means with 95% confidence intervals (Section 6:
//! "Confidence intervals in the following figures are calculated with 95%
//! confidence level"), so [`OnlineStats`] exposes exactly that via
//! Welford's algorithm, plus a small fixed-bucket [`Histogram`] used for
//! latency breakdowns.

use serde::{Deserialize, Serialize};

/// Numerically stable single-pass mean/variance accumulator (Welford).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; NaN when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; NaN when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95% confidence interval of the mean
    /// (normal approximation; the paper's figures use the same).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.n as f64).sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            stddev: self.stddev(),
            ci95: self.ci95(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Immutable snapshot of an [`OnlineStats`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} ± {:.1} (n={}, min={:.1}, max={:.1})",
            self.mean, self.ci95, self.count, self.min, self.max
        )
    }
}

/// Power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also covers 0.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram covering the full u64 range (64 buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (returns the upper bound of the bucket that
    /// contains the q-th observation); `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    /// Iterate over non-empty `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        let after = a.summary();
        assert_eq!(before.count, after.count);
        assert_eq!(before.mean, after.mean);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut r = crate::SplitMix64::new(1);
        for i in 0..10_000 {
            let x = r.next_f64();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        // Median falls in the [2,4) or [4,8) region for this data.
        let q50 = h.quantile(0.5);
        assert!((3..=7).contains(&q50), "q50={q50}");
        assert!(h.quantile(1.0) >= 1024);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert!(buckets.iter().any(|&(lo, _)| lo == 1024));
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
    }
}
