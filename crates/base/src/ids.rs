//! Identifiers for the simulated machine.
//!
//! The paper's machine model is `nodes × workers-per-node` where every
//! worker is a process pinned to one core (Section 5.1, "process-per-core").
//! [`WorkerId`] is the *global* worker index; [`NodeId`] the node index.
//! The mapping between the two lives in [`Topology`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Global index of a worker (one per simulated core running compute).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// Index of a node (shared-memory domain with its own comm server).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a task, unique for the lifetime of a simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl WorkerId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Shape of the simulated machine: how global worker indices map to nodes.
///
/// Mirrors the FX10 configuration in the paper: 16 cores per node, one of
/// which is reserved as the software fetch-and-add communication server, so
/// `workers_per_node` defaults to 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: u32,
    /// Compute workers per node (excludes the comm-server core).
    pub workers_per_node: u32,
}

impl Topology {
    /// A machine with `nodes` nodes of `workers_per_node` compute workers.
    pub fn new(nodes: u32, workers_per_node: u32) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        assert!(workers_per_node > 0, "a node needs at least one worker");
        Topology {
            nodes,
            workers_per_node,
        }
    }

    /// FX10-like: `nodes` nodes × 15 compute workers (paper Section 6).
    pub fn fx10(nodes: u32) -> Self {
        Self::new(nodes, 15)
    }

    /// Total number of compute workers.
    #[inline]
    pub fn total_workers(&self) -> u32 {
        self.nodes * self.workers_per_node
    }

    /// The node hosting a worker.
    #[inline]
    pub fn node_of(&self, w: WorkerId) -> NodeId {
        debug_assert!(w.0 < self.total_workers());
        NodeId(w.0 / self.workers_per_node)
    }

    /// A worker's index within its node.
    #[inline]
    pub fn local_index(&self, w: WorkerId) -> u32 {
        w.0 % self.workers_per_node
    }

    /// The global id of the `local`-th worker of `node`.
    #[inline]
    pub fn worker_at(&self, node: NodeId, local: u32) -> WorkerId {
        debug_assert!(node.0 < self.nodes && local < self.workers_per_node);
        WorkerId(node.0 * self.workers_per_node + local)
    }

    /// Iterate over all worker ids.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> {
        (0..self.total_workers()).map(WorkerId)
    }

    /// Whether two workers are on the same node (intra-node steal).
    #[inline]
    pub fn same_node(&self, a: WorkerId, b: WorkerId) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_mapping_roundtrips() {
        let t = Topology::new(4, 15);
        assert_eq!(t.total_workers(), 60);
        for w in t.workers() {
            let n = t.node_of(w);
            let l = t.local_index(w);
            assert_eq!(t.worker_at(n, l), w);
        }
    }

    #[test]
    fn fx10_reserves_comm_core() {
        let t = Topology::fx10(256);
        assert_eq!(t.workers_per_node, 15);
        assert_eq!(t.total_workers(), 3840);
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::new(2, 3);
        assert!(t.same_node(WorkerId(0), WorkerId(2)));
        assert!(!t.same_node(WorkerId(2), WorkerId(3)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        Topology::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        Topology::new(1, 0);
    }
}
