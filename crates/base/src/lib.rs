//! Common foundation for the uni-address threads reproduction.
//!
//! This crate holds the vocabulary types shared by every other crate in the
//! workspace: simulated time in CPU [`Cycles`], worker/node identifiers,
//! the deterministic [`rng`] used throughout the simulator, running
//! [`stats`], and the calibrated [`cost`] model that maps protocol
//! operations of the paper (RDMA ops, page faults, context switches) to
//! cycle costs.
//!
//! Nothing in here knows about stacks, deques, or RDMA semantics; those
//! live in `uat-vmem`, `uat-deque`, `uat-rdma` and `uat-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod ids;
pub mod json;
pub mod rng;
pub mod stats;
pub mod time;

pub use cost::CostModel;
pub use ids::{NodeId, TaskId, Topology, WorkerId};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::SplitMix64;
pub use stats::{HistSummary, Histogram, OnlineStats, Summary};
pub use time::Cycles;
