//! Minimal JSON document model, writer, and parser.
//!
//! The tracing exporters emit Chrome trace-event JSON and JSONL run
//! summaries, and the test suite parses them back to cross-check the
//! simulator's accounting. This build environment has no crates
//! registry, so rather than depending on `serde_json` the workspace
//! carries this small hand-rolled implementation: an order-preserving
//! [`Json`] value, a compact writer, and a strict recursive-descent
//! parser.
//!
//! Integers are kept exact: values that parse as non-negative integers
//! are stored as [`Json::UInt`] so `u64` quantities (cycle counts,
//! identifiers) round-trip bit-for-bit instead of passing through `f64`.

use std::collections::VecDeque;
use std::fmt;

/// A JSON value. Object members preserve insertion order so emitted
/// documents are deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or the typed accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { msg: msg.into() })
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member of an object, or an error naming the missing key.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(members) => match members.iter().find(|(k, _)| k == name) {
                Some((_, v)) => Ok(v),
                None => err(format!("missing field `{name}`")),
            },
            _ => err(format!("expected object with field `{name}`")),
        }
    }

    /// Member of an object if present (and the value is an object).
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match *self {
            Json::UInt(v) => Ok(v),
            Json::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
            _ => err(format!("expected u64, got {self}")),
        }
    }

    /// The value as `f64` (accepts either number variant).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match *self {
            Json::UInt(v) => Ok(v as f64),
            Json::Num(v) => Ok(v),
            _ => err(format!("expected number, got {self}")),
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match *self {
            Json::Bool(b) => Ok(b),
            _ => err(format!("expected bool, got {self}")),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => err(format!("expected string, got {self}")),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => err(format!("expected array, got {self}")),
        }
    }

    /// Pretty serialization: two-space indent, one member per line,
    /// trailing newline. For artifacts committed to the repository
    /// (benchmark baselines), where line-oriented diffs matter; the
    /// compact `Display` form is for wire/JSONL output.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    write!(out, "{pad}  {}: ", Json::str(k.as_str())).unwrap();
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => write!(out, "{other}").unwrap(),
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes `.0` for integral
                    // floats, which keeps the variant distinction stable.
                    write!(f, "{v:?}")
                } else {
                    // JSON has no Infinity/NaN; null is the least-bad spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Pending UTF-16 units for surrogate-pair decoding.
        let mut units: VecDeque<u16> = VecDeque::new();
        loop {
            let flush_units = |units: &mut VecDeque<u16>, out: &mut String| {
                if !units.is_empty() {
                    let decoded: Vec<u16> = units.drain(..).collect();
                    out.extend(char::decode_utf16(decoded).map(|r| r.unwrap_or('\u{fffd}')));
                }
            };
            match self.peek() {
                Some(b'"') => {
                    flush_units(&mut units, &mut out);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError {
                        msg: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError {
                                    msg: "bad \\u escape".into(),
                                })?;
                            let unit = u16::from_str_radix(hex, 16).map_err(|_| JsonError {
                                msg: "bad \\u escape".into(),
                            })?;
                            self.pos += 4;
                            units.push_back(unit);
                            continue;
                        }
                        _ => {
                            flush_units(&mut units, &mut out);
                            match esc {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'/' => out.push('/'),
                                b'n' => out.push('\n'),
                                b'r' => out.push('\r'),
                                b't' => out.push('\t'),
                                b'b' => out.push('\u{08}'),
                                b'f' => out.push('\u{0c}'),
                                _ => return err(format!("bad escape `\\{}`", esc as char)),
                            }
                        }
                    }
                }
                Some(_) => {
                    flush_units(&mut units, &mut out);
                    // Consume one UTF-8 scalar from the source text.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        msg: "invalid utf-8".into(),
                    })?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return err("unescaped control character in string");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Num(v)),
            Err(_) => err(format!("bad number `{text}`")),
        }
    }
}

/// Conversion into the [`Json`] document model.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion back from the [`Json`] document model.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl FromJson for u32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::try_from(v.as_u64()?).map_err(|_| JsonError {
            msg: "u32 overflow".into(),
        })
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        usize::try_from(v.as_u64()?).map_err(|_| JsonError {
            msg: "usize overflow".into(),
        })
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // NaN/Infinity serialize as null (JSON has no spelling for them).
        if *v == Json::Null {
            return Ok(f64::NAN);
        }
        v.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(Json::parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn u64_is_exact() {
        let big = u64::MAX - 1;
        let v = Json::parse(&Json::UInt(big).to_string()).unwrap();
        assert_eq!(v.as_u64().unwrap(), big);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nwith \"quotes\" \\ tab\t and unicode é λ";
        let rendered = Json::str(s).to_string();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), s);
        // Surrogate pair in the source text.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap().as_str().unwrap(),
            "\u{1f600}"
        );
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = Json::obj([
            ("name", Json::str("fib")),
            ("workers", Json::UInt(32)),
            ("ratio", Json::Num(0.25)),
            (
                "phases",
                Json::Arr(vec![Json::str("lock"), Json::str("steal"), Json::Null]),
            ),
            ("meta", Json::obj([("ok", Json::Bool(true))])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.field("workers").unwrap().as_u64().unwrap(), 32);
        assert!(doc.field("missing").is_err());
    }

    #[test]
    fn pretty_round_trips_and_is_line_oriented() {
        let doc = Json::obj([
            ("schema", Json::str("uat-bench/engine/v1")),
            (
                "entries",
                Json::Arr(vec![Json::obj([
                    ("label", Json::str("seed")),
                    ("events_per_sec", Json::Num(2.5e6)),
                    ("empty", Json::Arr(vec![])),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.ends_with('\n'));
        // One member per line: appending an entry touches few lines.
        assert!(text.lines().any(|l| l.trim() == "\"label\": \"seed\","));
        assert_eq!(text.lines().count(), 10, "{text}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n \"a\" : [ 1 , 2 ] \t}\n").unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
