//! Simulated time, measured in CPU cycles.
//!
//! The paper reports every cost in SPARC64IXfx cycles (1.848 GHz), so the
//! simulator's clock is a cycle counter. [`Cycles`] is a newtype over `u64`
//! with saturating arithmetic: an experiment that overflows 2^64 cycles
//! (~316 years of simulated time) is a bug, but saturation keeps the
//! simulator's invariants checkable instead of wrapping silently.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulated time, in CPU cycles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles (the epoch of every simulation).
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable time; used as "never" in event queues.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Construct from a raw cycle count.
    #[inline]
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Convert to seconds at a given clock frequency in Hz.
    #[inline]
    pub fn as_secs(self, hz: f64) -> f64 {
        self.0 as f64 / hz
    }

    /// Saturating addition of a span.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Span from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(c: u64) -> Self {
        Cycles(c)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 10_000_000 {
            write!(f, "{:.1}M cycles", self.0 as f64 / 1e6)
        } else if self.0 >= 10_000 {
            write!(f, "{:.1}K cycles", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} cycles", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates() {
        assert_eq!(Cycles::MAX + Cycles(1), Cycles::MAX);
        assert_eq!(Cycles(2) + Cycles(3), Cycles(5));
    }

    #[test]
    fn sub_saturates_at_zero() {
        assert_eq!(Cycles(3) - Cycles(5), Cycles::ZERO);
        assert_eq!(Cycles(5) - Cycles(3), Cycles(2));
    }

    #[test]
    fn since_is_directional() {
        assert_eq!(Cycles(10).since(Cycles(4)), Cycles(6));
        assert_eq!(Cycles(4).since(Cycles(10)), Cycles::ZERO);
    }

    #[test]
    fn as_secs_uses_frequency() {
        let c = Cycles(1_848_000_000);
        assert!((c.as_secs(1.848e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert!(Cycles(1) < Cycles(2));
        assert_eq!(Cycles(7).max(Cycles(3)), Cycles(7));
        assert_eq!(Cycles(7).min(Cycles(3)), Cycles(3));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Cycles(412)), "412 cycles");
        assert_eq!(format!("{}", Cycles(42_000)), "42.0K cycles");
        assert_eq!(format!("{}", Cycles(42_000_000)), "42.0M cycles");
    }
}
