//! Deterministic pseudo-random number generation for the simulator.
//!
//! Every stochastic choice in the simulation (victim selection, UTS tree
//! shape, workload jitter) flows through [`SplitMix64`], so a run is fully
//! reproducible from its seed. SplitMix64 is tiny, splittable (each worker
//! derives an independent stream from the root seed) and passes BigCrush;
//! it is the standard seeder for the xoshiro family.
//!
//! The `rand` crate is used elsewhere in the workspace for convenience
//! distributions, but the *simulation-critical* paths use this generator so
//! that results cannot change under a `rand` version bump.

use serde::{Deserialize, Serialize};

/// SplitMix64 PRNG (Steele, Lea & Flood; public domain reference algorithm).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for a sub-entity (e.g. one worker).
    ///
    /// The derived seed is the parent's output after mixing in `stream`,
    /// which decorrelates sibling streams even for adjacent indices.
    #[inline]
    pub fn split(&self, stream: u64) -> SplitMix64 {
        let mut child =
            SplitMix64::new(self.state ^ mix(stream.wrapping_add(0x9e37_79b9_7f4a_7c15)));
        // Burn one output so `split(0)` differs from a clone.
        child.next_u64();
        child
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Next 32 random bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift; `bound` > 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening multiply maps a 64-bit draw to [0, bound) with
        // negligible bias (< 2^-64 per draw), which is fine for victim
        // selection and workload shaping.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick a uniformly random element index of a non-empty slice length.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 C reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ() {
        let root = SplitMix64::new(7);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let mut same = 0;
        for _ in 0..64 {
            if s0.next_u64() == s1.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0, "sibling streams must not collide");
    }

    #[test]
    fn split_differs_from_parent() {
        let root = SplitMix64::new(7);
        let mut child = root.split(0);
        let mut parent = root.clone();
        assert_ne!(child.next_u64(), parent.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }
}
