//! The shared-memory subsystem under the model: sequential consistency
//! or C11-style release/acquire ("ra") semantics, selectable per
//! scenario.
//!
//! PR 3's explorer interleaved *steps* but kept one authoritative value
//! per shared word — sequential consistency. `NativeDeque` actually runs
//! on `Relaxed`/`Acquire`/`Release`/`SeqCst` atomics, and the behaviors
//! those orderings permit beyond SC are exactly where the next
//! double-claim hides. This module closes that gap with an operational
//! *view-based* weak memory in the style of the promising/view machines
//! (Kang et al., POPL'17, minus promises — we never need speculative
//! stores for release/acquire):
//!
//! - every store appends a **message** `(value, view)` to its location's
//!   modification order (a per-location history);
//! - every thread carries a **view**: for each location, the lowest
//!   timestamp it is still allowed to read (its coherence floor);
//! - a **load** may read *any* message at or above the thread's floor —
//!   this reads-from choice is the extra nondeterminism the explorer
//!   branches on. Reading raises the floor to the message read.
//!   `Acquire` (and `SeqCst`) loads additionally join the message's view
//!   into the thread's view — the synchronizes-with edge;
//! - a `Release` (and `SeqCst`) store records the storing thread's whole
//!   view in its message; a `Relaxed` store records only its own
//!   timestamp, so reading it transfers nothing;
//! - an **RMW** is atomic in modification order: it always reads the
//!   *latest* message and appends immediately after it. Its message
//!   inherits the view of the message it read from (C11 release
//!   sequences: an acquire read of any RMW in the sequence synchronizes
//!   with the head), joined with the updating thread's view only when
//!   the success ordering has release semantics;
//! - `SeqCst` accesses additionally maintain a per-location **SC floor**:
//!   an SC store records its timestamp in `sc[loc]`, and an SC load may
//!   not read below it. This makes SC accesses to the *same* pair of
//!   locations pairwise sequentially consistent in execution order —
//!   the store-buffering/Dekker guarantee the THE protocol's
//!   store-`bottom`-then-load-`top` handshake relies on — while leaving
//!   everything weaker exactly as weak as release/acquire allows.
//!
//! Two deliberate modeling decisions, documented because they bound what
//! the explorer can conclude (see DESIGN.md §11):
//!
//! - **Modification order = store execution order.** A store always
//!   appends at the end of its location's history; the explorer's
//!   interleaving enumeration covers every arrival order, but a store
//!   can never be inserted *between* existing messages. For the THE
//!   words this loses nothing: `bottom` has a single writer (the owner),
//!   `top` writers are serialized by the lock, and the lock word is
//!   RMW-or-release-store only — all cases where C11's modification
//!   order coincides with some execution order the explorer already
//!   enumerates.
//! - **Plain (non-atomic) accesses are modeled as `Relaxed`.** The model
//!   checks *values*, not UB: a racy slot read shows up as a stale value
//!   (caught by the conservation/phantom invariants), not as undefined
//!   behavior. The UB side of the same hazard is covered by Miri and the
//!   ThreadSanitizer CI job.

/// Memory ordering of one access, mirroring `std::sync::atomic::Ordering`
/// at the sites `NativeDeque` actually uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemOrd {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire` (loads / CAS success).
    Acquire,
    /// `Ordering::Release` (stores).
    Release,
    /// `Ordering::SeqCst`.
    SeqCst,
}

impl MemOrd {
    fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::SeqCst)
    }

    /// Stable name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            MemOrd::Relaxed => "Relaxed",
            MemOrd::Acquire => "Acquire",
            MemOrd::Release => "Release",
            MemOrd::SeqCst => "SeqCst",
        }
    }
}

/// Which memory semantics a scenario explores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemModel {
    /// Sequential consistency: one authoritative value per word (the
    /// PR 3 semantics; orderings are ignored).
    Sc,
    /// Release/acquire + relaxed + per-location SC floors: loads branch
    /// over every message their ordering permits.
    Ra,
}

impl MemModel {
    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            MemModel::Sc => "sc",
            MemModel::Ra => "ra",
        }
    }
}

/// One store's record in a location's modification order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Msg {
    val: u64,
    /// The view this message transfers to acquire readers: at minimum
    /// its own `{loc: ts}`, the full storing-thread view for release
    /// stores, the read-from message's view for RMWs.
    view: Vec<u32>,
}

/// Result of one load.
#[derive(Clone, Copy, Debug)]
pub struct LoadOut {
    /// The value read.
    pub val: u64,
    /// True if a newer message existed (the read was stale) — used only
    /// to annotate counterexample traces.
    pub stale: bool,
}

fn join(dst: &mut [u32], src: &[u32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// Weak-memory state: per-location histories, per-thread views, and the
/// per-location SC floor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WeakMem {
    /// `hist[loc]` is the modification order of location `loc`; index =
    /// timestamp. `hist[loc][0]` is the initial (pre-scenario) value.
    hist: Vec<Vec<Msg>>,
    /// `views[thread][loc]` = lowest timestamp the thread may read.
    views: Vec<Vec<u32>>,
    /// `sc[loc]` = timestamp of the latest `SeqCst` store to `loc`;
    /// an additional floor for `SeqCst` loads.
    sc: Vec<u32>,
}

/// The shared memory of one explored system.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Mem {
    /// Sequential consistency: latest value per location.
    Sc(Vec<u64>),
    /// Release/acquire view machine.
    Weak(WeakMem),
}

impl Mem {
    /// Fresh memory with `init` as every location's (already published)
    /// initial value. In `Ra` mode the initial state is fully
    /// synchronized: scenario prologues run before any thief attaches,
    /// exactly like the runtime's deque construction happens-before its
    /// worker threads starting.
    pub fn new(model: MemModel, init: Vec<u64>, threads: usize) -> Mem {
        match model {
            MemModel::Sc => Mem::Sc(init),
            MemModel::Ra => {
                let n = init.len();
                Mem::Weak(WeakMem {
                    hist: init
                        .into_iter()
                        .map(|v| {
                            vec![Msg {
                                val: v,
                                view: vec![0; n],
                            }]
                        })
                        .collect(),
                    views: vec![vec![0; n]; threads],
                    sc: vec![0; n],
                })
            }
        }
    }

    /// Number of locations.
    pub fn locs(&self) -> usize {
        match self {
            Mem::Sc(vals) => vals.len(),
            Mem::Weak(w) => w.hist.len(),
        }
    }

    /// Which model this memory runs.
    pub fn model(&self) -> MemModel {
        match self {
            Mem::Sc(_) => MemModel::Sc,
            Mem::Weak(_) => MemModel::Ra,
        }
    }

    /// The newest value of `loc` (the authoritative state for invariant
    /// checks, which are claims about modification order, not views).
    pub fn latest(&self, loc: usize) -> u64 {
        match self {
            Mem::Sc(vals) => vals[loc],
            Mem::Weak(w) => w.hist[loc].last().expect("nonempty history").val,
        }
    }

    fn floor(w: &WeakMem, th: usize, loc: usize, ord: MemOrd) -> u32 {
        let mut f = w.views[th][loc];
        if ord == MemOrd::SeqCst {
            f = f.max(w.sc[loc]);
        }
        f
    }

    /// How many distinct messages a load of `loc` by `th` at `ord` may
    /// read (1 under SC). The explorer branches over `0..choices`.
    pub fn load_choices(&self, th: usize, loc: usize, ord: MemOrd) -> u32 {
        match self {
            Mem::Sc(_) => 1,
            Mem::Weak(w) => w.hist[loc].len() as u32 - Self::floor(w, th, loc, ord),
        }
    }

    /// Perform the load, reading message `floor + choice` (so `choice`
    /// ranges over `0..load_choices(..)`; under SC it must be 0).
    pub fn load(&mut self, th: usize, loc: usize, ord: MemOrd, choice: u32) -> LoadOut {
        match self {
            Mem::Sc(vals) => {
                assert_eq!(choice, 0, "SC loads have exactly one choice");
                LoadOut {
                    val: vals[loc],
                    stale: false,
                }
            }
            Mem::Weak(w) => {
                let ts = Self::floor(w, th, loc, ord) + choice;
                let last = w.hist[loc].len() as u32 - 1;
                assert!(ts <= last, "load choice out of range");
                let msg = &w.hist[loc][ts as usize];
                let val = msg.val;
                if ord.acquires() {
                    let view = msg.view.clone();
                    join(&mut w.views[th], &view);
                }
                w.views[th][loc] = w.views[th][loc].max(ts);
                LoadOut {
                    val,
                    stale: ts < last,
                }
            }
        }
    }

    /// Append a store.
    pub fn store(&mut self, th: usize, loc: usize, ord: MemOrd, val: u64) {
        match self {
            Mem::Sc(vals) => vals[loc] = val,
            Mem::Weak(w) => {
                let ts = w.hist[loc].len() as u32;
                let view = if ord.releases() {
                    let mut v = w.views[th].clone();
                    v[loc] = ts;
                    v
                } else {
                    let mut v = vec![0; w.sc.len()];
                    v[loc] = ts;
                    v
                };
                w.hist[loc].push(Msg { val, view });
                w.views[th][loc] = ts;
                if ord == MemOrd::SeqCst {
                    w.sc[loc] = ts;
                }
            }
        }
    }

    /// Compare-and-swap: atomically reads the *latest* message (RMWs
    /// cannot read stale) and, if it equals `expect`, appends `new`
    /// immediately after it in modification order. Returns
    /// `(old, succeeded)`. `succ` is the success ordering (`Acquire` for
    /// the deque's lock; the failure ordering is `Relaxed`, which an
    /// RMW's mandatory latest-read already subsumes).
    pub fn cas(
        &mut self,
        th: usize,
        loc: usize,
        expect: u64,
        new: u64,
        succ: MemOrd,
    ) -> (u64, bool) {
        match self {
            Mem::Sc(vals) => {
                let old = vals[loc];
                if old == expect {
                    vals[loc] = new;
                }
                (old, old == expect)
            }
            Mem::Weak(w) => {
                let last = w.hist[loc].len() as u32 - 1;
                let old_msg = w.hist[loc][last as usize].clone();
                let old = old_msg.val;
                if old != expect {
                    // Failure: a relaxed load of the latest message.
                    w.views[th][loc] = w.views[th][loc].max(last);
                    return (old, false);
                }
                let ts = last + 1;
                // Release-sequence continuation: the new message carries
                // the view of the message it displaced, so an acquire
                // read of this (or any later RMW in the chain) still
                // synchronizes with the sequence head.
                let mut view = old_msg.view;
                view[loc] = ts;
                if succ.releases() {
                    let tv = w.views[th].clone();
                    join(&mut view, &tv);
                    view[loc] = ts;
                }
                if succ.acquires() {
                    let v = view.clone();
                    join(&mut w.views[th], &v);
                }
                w.hist[loc].push(Msg { val: new, view });
                w.views[th][loc] = ts;
                if succ == MemOrd::SeqCst {
                    w.sc[loc] = ts;
                }
                (old, true)
            }
        }
    }

    /// Fetch-and-add, same atomicity rules as [`cas`](Self::cas). Used
    /// only by the `SimPhase` machine (SC mode), where the fabric
    /// linearizes the FAA at its issue instant.
    pub fn faa(&mut self, th: usize, loc: usize, add: u64, ord: MemOrd) -> u64 {
        let old = self.latest(loc);
        let (got, ok) = self.cas(th, loc, old, old + add, ord);
        debug_assert!(ok && got == old, "faa read the latest by construction");
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: usize = 0; // flag-ish location
    const D: usize = 1; // data location

    fn ra(threads: usize) -> Mem {
        Mem::new(MemModel::Ra, vec![0, 0], threads)
    }

    /// Message passing with release/acquire works: after reading the
    /// flag=1 release store with acquire, the data read is pinned fresh.
    #[test]
    fn release_acquire_publishes() {
        let mut m = ra(2);
        m.store(0, D, MemOrd::Relaxed, 42);
        m.store(0, L, MemOrd::Release, 1);
        // Reader: acquire-load the flag, choosing the new message.
        assert_eq!(m.load_choices(1, L, MemOrd::Acquire), 2);
        let f = m.load(1, L, MemOrd::Acquire, 1);
        assert_eq!(f.val, 1);
        // The data floor rose with the join: only 42 is readable.
        assert_eq!(m.load_choices(1, D, MemOrd::Relaxed), 1);
        assert_eq!(m.load(1, D, MemOrd::Relaxed, 0).val, 42);
    }

    /// With a relaxed flag store, the reader may still read stale data —
    /// the weak behavior SC hides.
    #[test]
    fn relaxed_store_transfers_nothing() {
        let mut m = ra(2);
        m.store(0, D, MemOrd::Relaxed, 42);
        m.store(0, L, MemOrd::Relaxed, 1);
        let f = m.load(1, L, MemOrd::Acquire, 1);
        assert_eq!(f.val, 1);
        // Both the initial 0 and the 42 are readable: stale is possible.
        assert_eq!(m.load_choices(1, D, MemOrd::Relaxed), 2);
        let stale = m.load(1, D, MemOrd::Relaxed, 0);
        assert_eq!(stale.val, 0);
        assert!(stale.stale);
    }

    /// Store-buffering (Dekker): with SeqCst on all four accesses, at
    /// least one thread must see the other's store regardless of
    /// interleaving — here the second loader is forced fresh by the SC
    /// floor.
    #[test]
    fn seqcst_dekker_floor() {
        let mut m = ra(2);
        m.store(0, L, MemOrd::SeqCst, 1); // thread 0: L := 1
        m.store(1, D, MemOrd::SeqCst, 1); // thread 1: D := 1
                                          // Thread 0 loads D: the SC floor forces the fresh value.
        assert_eq!(m.load_choices(0, D, MemOrd::SeqCst), 1);
        assert_eq!(m.load(0, D, MemOrd::SeqCst, 0).val, 1);
        // Downgrade demo: a Relaxed load could still read stale.
        assert_eq!(m.load_choices(1, L, MemOrd::Relaxed), 2);
    }

    /// A release-headed sequence survives an interposed RMW: acquiring
    /// the lock after a relaxed unlock transfers nothing, after a release
    /// unlock everything.
    #[test]
    fn rmw_continues_release_sequence() {
        let mut m = ra(3);
        m.store(0, D, MemOrd::Relaxed, 7);
        m.store(0, L, MemOrd::Release, 0); // release unlock (head)
        let (old, ok) = m.cas(1, L, 0, 1, MemOrd::Acquire);
        assert!(ok && old == 0);
        // Thread 1 synchronized with the head: data floor is fresh.
        assert_eq!(m.load_choices(1, D, MemOrd::Relaxed), 1);
        // Thread 2 acquire-reads the RMW's message (choice 2: the newest
        // of {init, unlock, cas}): also synchronized (release sequence),
        // even though thread 1's CAS wasn't release.
        let f = m.load(2, L, MemOrd::Acquire, 2);
        assert_eq!(f.val, 1);
        assert_eq!(m.load_choices(2, D, MemOrd::Relaxed), 1);
    }

    /// SC mode is single-valued and choice-free.
    #[test]
    fn sc_mode_is_sc() {
        let mut m = Mem::new(MemModel::Sc, vec![0, 0], 2);
        m.store(0, D, MemOrd::Relaxed, 5);
        assert_eq!(m.load_choices(1, D, MemOrd::Relaxed), 1);
        assert_eq!(m.load(1, D, MemOrd::Relaxed, 0).val, 5);
        assert_eq!(m.latest(D), 5);
    }
}
