//! CLI for the THE-protocol interleaving checker.
//!
//! ```text
//! uat_check                        # clean suite under SC: zero violations
//! uat_check --memory-model ra      # clean suite under release/acquire
//! uat_check --mutate <name>        # seeded regression: must find a
//!                                  #   counterexample and print its trace
//! uat_check --list-mutations
//! uat_check --json stats.json      # machine-readable run statistics
//! uat_check --replay-cap 500       # bound differential-replay schedules
//! ```
//!
//! Exit code 0 means "the checker did its job": zero violations for the
//! clean suite, a counterexample trace for a seeded mutation. Anything
//! else exits 1, so both modes can gate CI directly.
//!
//! Ordering-downgrade mutations (`*-weak`) carry their own RA demo
//! scenarios, so `--mutate push-publish-weak` needs no `--memory-model`
//! flag; the flag selects which *clean* suite runs.

use std::process::ExitCode;
use uat_check::model::{Family, Mutation};
use uat_check::scenarios::{mutation_demos, sleep_set_scenarios, standard_suite, weak_suite};
use uat_check::{replay, Explorer, MemModel};

const MUTATIONS: [Mutation; 10] = [
    // Protocol mutations (visible under SC).
    Mutation::SkipOwnerTopRecheck,
    Mutation::SkipUnlockOnRacedEmpty,
    Mutation::LastEntryFastPath,
    Mutation::BatchNarrowOwnerBound,
    // Ordering downgrades (visible only under the RA memory model).
    Mutation::PushPublishRelaxed,
    Mutation::PopPublishRelease,
    Mutation::StealBottomRelaxed,
    Mutation::UnlockRelaxed,
    Mutation::LockCasRelaxed,
    Mutation::ClaimTopRelease,
];

/// Per-scenario statistics accumulated for `--json`.
struct ScenarioStat {
    name: &'static str,
    states: u64,
    transitions: u64,
    interleavings: u128,
    finals: usize,
    violation: Option<String>,
}

fn main() -> ExitCode {
    let mut mutate: Option<Mutation> = None;
    let mut replay_cap: usize = 2000;
    let mut model = MemModel::Sc;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mutate" => {
                let name = args.next().unwrap_or_default();
                match MUTATIONS.iter().find(|m| m.name() == name) {
                    Some(&m) => mutate = Some(m),
                    None => {
                        eprintln!("unknown mutation `{name}`; try --list-mutations");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--list-mutations" => {
                for m in MUTATIONS {
                    println!("{}", m.name());
                }
                return ExitCode::SUCCESS;
            }
            "--memory-model" => match args.next().as_deref() {
                Some("sc") => model = MemModel::Sc,
                Some("ra") => model = MemModel::Ra,
                other => {
                    eprintln!(
                        "--memory-model takes `sc` or `ra`, got `{}`",
                        other.unwrap_or("")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--json" => {
                json_path = args.next();
                if json_path.is_none() {
                    eprintln!("--json takes an output path");
                    return ExitCode::FAILURE;
                }
            }
            "--replay-cap" => {
                replay_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(replay_cap);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    match mutate {
        None => run_clean_suite(model, replay_cap, json_path.as_deref()),
        Some(m) => run_mutation_demo(m, json_path.as_deref()),
    }
}

fn run_clean_suite(model: MemModel, replay_cap: usize, json_path: Option<&str>) -> ExitCode {
    let suite = match model {
        MemModel::Sc => standard_suite(),
        MemModel::Ra => weak_suite(),
    };
    let mut stats: Vec<ScenarioStat> = Vec::new();
    let mut total_interleavings: u128 = 0;
    let mut total_states: u64 = 0;
    let mut failed = false;
    println!(
        "uat-check: THE-protocol steal path, exhaustive exploration ({} memory model)",
        match model {
            MemModel::Sc => "sequentially consistent",
            MemModel::Ra => "release/acquire",
        }
    );
    println!(
        "{:<22} {:>10} {:>12} {:>16} {:>8}",
        "scenario", "states", "transitions", "interleavings", "finals"
    );
    for sc in &suite {
        let report = Explorer::new(sc, 0).run_exhaustive();
        println!(
            "{:<22} {:>10} {:>12} {:>16} {:>8}",
            report.scenario,
            report.states,
            report.transitions,
            report.interleavings,
            report.final_states.len()
        );
        total_interleavings += report.interleavings;
        total_states += report.states;
        let violation = report.violation.as_ref().map(|v| {
            println!("{}", v.render(sc.name));
            failed = true;
            v.kind.describe()
        });
        stats.push(ScenarioStat {
            name: sc.name,
            states: report.states,
            transitions: report.transitions,
            interleavings: report.interleavings,
            finals: report.final_states.len(),
            violation,
        });
    }

    // Sleep-set cross-check + differential replay on the scenarios whose
    // path space is small enough to walk path-by-path (SC only: the
    // sleep-set prover and the SimDeque replay target are SC artifacts).
    if model == MemModel::Sc {
        for sc in &suite {
            if !sleep_set_scenarios().contains(&sc.name) {
                continue;
            }
            let exhaustive = Explorer::new(sc, 0).run_exhaustive();
            let sleepy = Explorer::new(sc, replay_cap).run_sleep_sets();
            if let Some(v) = &sleepy.violation {
                println!("{}", v.render(sc.name));
                failed = true;
                continue;
            }
            let agree = sleepy.final_states == exhaustive.final_states;
            if !agree {
                println!(
                    "{}: sleep-set exploration reached {} quiescent states, exhaustive {} — pruning is unsound",
                    sc.name,
                    sleepy.final_states.len(),
                    exhaustive.final_states.len()
                );
                failed = true;
            }
            assert_eq!(sc.family, Family::SimPhase);
            match replay::replay_schedules(sc, &sleepy.schedules) {
                Ok(n) => println!(
                    "{:<22} sleep-sets: {} executions ({} pruned), replayed {} against SimDeque: conform",
                    sc.name, sleepy.interleavings, sleepy.sleep_pruned, n
                ),
                Err(e) => {
                    println!("{}: replay divergence: {e}", sc.name);
                    failed = true;
                }
            }
        }
    }

    println!(
        "total: {total_states} states verified, {total_interleavings} distinct interleavings across {} scenarios",
        suite.len()
    );
    if let Some(path) = json_path {
        if let Err(e) = write_json(path, model, None, &stats, !failed) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("stats written to {path}");
    }
    if failed {
        println!("RESULT: VIOLATIONS FOUND");
        ExitCode::FAILURE
    } else {
        println!("RESULT: no invariant violations");
        ExitCode::SUCCESS
    }
}

fn run_mutation_demo(m: Mutation, json_path: Option<&str>) -> ExitCode {
    let demos = mutation_demos(m);
    let mut stats: Vec<ScenarioStat> = Vec::new();
    let mut bit = false;
    println!("uat-check: seeded mutation `{}`", m.name());
    for sc in &demos {
        let report = Explorer::new(sc, 0).run_exhaustive();
        let violation = match &report.violation {
            Some(v) => {
                println!("{}", v.render(sc.name));
                bit = true;
                Some(v.kind.describe())
            }
            None => {
                println!(
                    "{}: no violation found ({} interleavings) — mutation not observable here",
                    sc.name, report.interleavings
                );
                None
            }
        };
        stats.push(ScenarioStat {
            name: sc.name,
            states: report.states,
            transitions: report.transitions,
            interleavings: report.interleavings,
            finals: report.final_states.len(),
            violation,
        });
    }
    if let Some(path) = json_path {
        // For a mutation run "ok" means the counterexample was found.
        let model = demos.first().map(|sc| sc.mem_model).unwrap_or(MemModel::Sc);
        if let Err(e) = write_json(path, model, Some(m), &stats, bit) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("stats written to {path}");
    }
    if bit {
        println!("RESULT: checker caught the mutation (exit 0)");
        ExitCode::SUCCESS
    } else {
        println!("RESULT: checker FAILED to catch the mutation (exit 1)");
        ExitCode::FAILURE
    }
}

/// Minimal JSON escaping: the strings we emit are scenario names,
/// mutation names, and violation one-liners — ASCII with no exotic
/// control characters, but quotes and backslashes are handled anyway.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Hand-rolled writer (the workspace carries no serde); the schema is
/// consumed by CI dashboards and the lint's fixture tests.
fn write_json(
    path: &str,
    model: MemModel,
    mutation: Option<Mutation>,
    stats: &[ScenarioStat],
    ok: bool,
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"memory_model\": {},\n",
        json_str(model.name())
    ));
    s.push_str(&format!(
        "  \"mutation\": {},\n",
        mutation.map_or("null".to_string(), |m| json_str(m.name()))
    ));
    s.push_str(&format!("  \"ok\": {ok},\n"));
    s.push_str(&format!(
        "  \"total_states\": {},\n",
        stats.iter().map(|t| t.states).sum::<u64>()
    ));
    s.push_str(&format!(
        "  \"total_interleavings\": {},\n",
        stats.iter().map(|t| t.interleavings).sum::<u128>()
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, st) in stats.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"states\": {}, \"transitions\": {}, \"interleavings\": {}, \"finals\": {}, \"violation\": {}}}{}\n",
            json_str(st.name),
            st.states,
            st.transitions,
            st.interleavings,
            st.finals,
            st.violation
                .as_deref()
                .map_or("null".to_string(), json_str),
            if i + 1 == stats.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}
