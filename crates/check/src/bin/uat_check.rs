//! CLI for the THE-protocol interleaving checker.
//!
//! ```text
//! uat_check                      # clean suite: must find zero violations
//! uat_check --mutate <name>      # seeded regression: must find a
//!                                #   counterexample and print its trace
//! uat_check --list-mutations
//! uat_check --replay-cap 500     # bound differential-replay schedules
//! ```
//!
//! Exit code 0 means "the checker did its job": zero violations for the
//! clean suite, a counterexample trace for a seeded mutation. Anything
//! else exits 1, so both modes can gate CI directly.

use std::process::ExitCode;
use uat_check::model::{Family, Mutation};
use uat_check::scenarios::{mutation_demos, sleep_set_scenarios, standard_suite};
use uat_check::{replay, Explorer};

const MUTATIONS: [Mutation; 3] = [
    Mutation::SkipOwnerTopRecheck,
    Mutation::SkipUnlockOnRacedEmpty,
    Mutation::LastEntryFastPath,
];

fn main() -> ExitCode {
    let mut mutate: Option<Mutation> = None;
    let mut replay_cap: usize = 2000;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mutate" => {
                let name = args.next().unwrap_or_default();
                match MUTATIONS.iter().find(|m| m.name() == name) {
                    Some(&m) => mutate = Some(m),
                    None => {
                        eprintln!("unknown mutation `{name}`; try --list-mutations");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--list-mutations" => {
                for m in MUTATIONS {
                    println!("{}", m.name());
                }
                return ExitCode::SUCCESS;
            }
            "--replay-cap" => {
                replay_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(replay_cap);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    match mutate {
        None => run_clean_suite(replay_cap),
        Some(m) => run_mutation_demo(m),
    }
}

fn run_clean_suite(replay_cap: usize) -> ExitCode {
    let suite = standard_suite();
    let mut total_interleavings: u128 = 0;
    let mut total_states: u64 = 0;
    let mut failed = false;
    println!("uat-check: THE-protocol steal path, exhaustive exploration");
    println!(
        "{:<22} {:>10} {:>12} {:>16} {:>8}",
        "scenario", "states", "transitions", "interleavings", "finals"
    );
    for sc in &suite {
        let report = Explorer::new(sc, 0).run_exhaustive();
        println!(
            "{:<22} {:>10} {:>12} {:>16} {:>8}",
            report.scenario,
            report.states,
            report.transitions,
            report.interleavings,
            report.final_states.len()
        );
        total_interleavings += report.interleavings;
        total_states += report.states;
        if let Some(v) = &report.violation {
            println!("{}", v.render(sc.name));
            failed = true;
        }
    }

    // Sleep-set cross-check + differential replay on the scenarios whose
    // path space is small enough to walk path-by-path.
    for sc in &suite {
        if !sleep_set_scenarios().contains(&sc.name) {
            continue;
        }
        let exhaustive = Explorer::new(sc, 0).run_exhaustive();
        let sleepy = Explorer::new(sc, replay_cap).run_sleep_sets();
        if let Some(v) = &sleepy.violation {
            println!("{}", v.render(sc.name));
            failed = true;
            continue;
        }
        let agree = sleepy.final_states == exhaustive.final_states;
        if !agree {
            println!(
                "{}: sleep-set exploration reached {} quiescent states, exhaustive {} — pruning is unsound",
                sc.name,
                sleepy.final_states.len(),
                exhaustive.final_states.len()
            );
            failed = true;
        }
        assert_eq!(sc.family, Family::SimPhase);
        match replay::replay_schedules(sc, &sleepy.schedules) {
            Ok(n) => println!(
                "{:<22} sleep-sets: {} executions ({} pruned), replayed {} against SimDeque: conform",
                sc.name, sleepy.interleavings, sleepy.sleep_pruned, n
            ),
            Err(e) => {
                println!("{}: replay divergence: {e}", sc.name);
                failed = true;
            }
        }
    }

    println!(
        "total: {total_states} states verified, {total_interleavings} distinct interleavings across {} scenarios",
        suite.len()
    );
    if failed {
        println!("RESULT: VIOLATIONS FOUND");
        ExitCode::FAILURE
    } else {
        println!("RESULT: no invariant violations");
        ExitCode::SUCCESS
    }
}

fn run_mutation_demo(m: Mutation) -> ExitCode {
    let demos = mutation_demos(m);
    let mut bit = false;
    println!("uat-check: seeded mutation `{}`", m.name());
    for sc in &demos {
        let report = Explorer::new(sc, 0).run_exhaustive();
        match &report.violation {
            Some(v) => {
                println!("{}", v.render(sc.name));
                bit = true;
            }
            None => println!(
                "{}: no violation found ({} interleavings) — mutation not observable here",
                sc.name, report.interleavings
            ),
        }
    }
    if bit {
        println!("RESULT: checker caught the mutation (exit 0)");
        ExitCode::SUCCESS
    } else {
        println!("RESULT: checker FAILED to catch the mutation (exit 1)");
        ExitCode::FAILURE
    }
}
