//! Small-step state machines for the THE-protocol steal path.
//!
//! The shared state is the deque's four memory regions — the lock word,
//! `top`, `bottom`, and the entry slots — exactly the words of the
//! canonical `uat_deque::layout` that `SimDeque` lays out in fabric
//! memory and `NativeDeque` keeps in atomics (the location bit-masks
//! below are derived from those offsets). Two thread kinds step over it:
//!
//! - the **owner**, running a fixed script of `push`/`pop` ops, and
//! - **thieves**, each running a fixed number of steal attempts
//!   (empty-check → lock → steal → unlock).
//!
//! Each model family fixes the *atomicity granularity*:
//!
//! - [`Family::SimPhase`] — one step per simulator event, mirroring how
//!   the discrete-event engine executes the protocol: owner `push`/`pop`
//!   are single atomic steps (they are plain local memory ops inside one
//!   engine event) and each thief RDMA phase (Figure 6 / Table 3) is a
//!   single atomic step, because `Fabric` linearizes every one-sided op
//!   at its issue instant.
//! - [`Family::NativeOp`] — one step per *shared memory access*,
//!   mirroring `NativeDeque`'s individual atomic loads/stores/RMWs under
//!   sequential consistency (every access there is `SeqCst` at the
//!   protocol-relevant points). This is the granularity at which the
//!   last-entry arbitration can actually go wrong — an owner's pop and
//!   a locked thief's critical section overlap access-by-access — which
//!   phase-atomic models cannot see.
//!
//! [`Mutation`]s re-introduce specific protocol regressions so the
//! checker can demonstrate a counterexample trace for each (and so a
//! future refactor that reintroduces one is caught by the suite).

/// Shared-memory location classes, used for the independence relation
/// behind sleep-set pruning. Slot indices are per-capacity (`pos % cap`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Bitmask of locations read (bit 0 = lock, 1 = top, 2 = bottom,
    /// 3+i = slot i).
    pub reads: u32,
    /// Bitmask of locations written.
    pub writes: u32,
}

use uat_deque::layout::{loc_bit, OFF_BOTTOM, OFF_ENTRIES, OFF_LOCK, OFF_TOP};

const LOC_LOCK: u32 = 1 << loc_bit(OFF_LOCK);
const LOC_TOP: u32 = 1 << loc_bit(OFF_TOP);
const LOC_BOTTOM: u32 = 1 << loc_bit(OFF_BOTTOM);
/// First slot bit: the word index where the entries begin.
const LOC_SLOT0: u32 = loc_bit(OFF_ENTRIES);

fn loc_slot(slot: u64) -> u32 {
    assert!(slot < 16, "model supports capacities up to 16");
    1 << (LOC_SLOT0 + slot as u32)
}

impl Access {
    fn r(mask: u32) -> Access {
        Access {
            reads: mask,
            writes: 0,
        }
    }

    fn rw(reads: u32, writes: u32) -> Access {
        Access { reads, writes }
    }

    /// Two steps are independent iff neither writes a location the other
    /// touches — disjoint read/write footprints commute and preserve each
    /// other's enabledness (enabledness conditions are included in the
    /// read sets).
    pub fn independent(self, other: Access) -> bool {
        self.writes & (other.reads | other.writes) == 0
            && other.writes & (self.reads | self.writes) == 0
    }
}

/// Atomicity granularity of a scenario (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Simulator-faithful: owner ops and thief RDMA phases are atomic.
    SimPhase,
    /// `NativeDeque`-faithful: one step per shared atomic access.
    NativeOp,
}

/// A seeded protocol regression for mutation smoke-checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Unmodified protocol — the checker must find zero violations.
    None,
    /// Delete the owner's top re-check after decrementing `bottom`: the
    /// pop always takes the fast path, so it can keep an entry a thief
    /// already stole (double claim).
    SkipOwnerTopRecheck,
    /// Drop phase 4 when phase 3 finds the deque drained: the lock word
    /// is never rewritten to 0 (lock leak, and the owner's contended pop
    /// wedges forever).
    SkipUnlockOnRacedEmpty,
    /// `NativeOp` only: the owner's original fast-path bound — take the
    /// last entry (`top == bottom - 1` after the decrement) lock-free
    /// whenever the top re-read shows no *published* claim, instead of
    /// arbitrating it under the lock. A thief already inside its locked
    /// critical section has loaded `top` and `bottom` but not yet
    /// advanced `top`, so the owner's re-read looks clean while both
    /// sides go on to keep the same entry. This is the latent bug
    /// `uat-check` found in the shipped `NativeDeque::pop`.
    LastEntryFastPath,
}

impl Mutation {
    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipOwnerTopRecheck => "owner-top-recheck",
            Mutation::SkipUnlockOnRacedEmpty => "unlock-drop",
            Mutation::LastEntryFastPath => "last-entry-fast-path",
        }
    }
}

/// One owner-script operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnerOp {
    /// Push the value (values are unique per scenario; conservation is
    /// checked per value).
    Push(u64),
    /// Pop the youngest entry.
    Pop,
}

/// A closed system to check: owner script, thief attempt counts, deque
/// capacity, granularity, and an optional seeded mutation.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Report name.
    pub name: &'static str,
    /// Atomicity granularity.
    pub family: Family,
    /// Deque capacity (slots).
    pub capacity: u64,
    /// Owner ops executed serially (at `SimPhase` atomicity) before the
    /// interleaved part, to advance positions past slot wraparound. Must
    /// leave the deque empty.
    pub prologue: Vec<OwnerOp>,
    /// Owner ops explored under full interleaving.
    pub owner: Vec<OwnerOp>,
    /// Steal attempts per thief (one entry per thief).
    pub thieves: Vec<u32>,
    /// Seeded regression, or `Mutation::None`.
    pub mutation: Mutation,
}

/// Program counter of the owner thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OwnerPc {
    /// Between ops (next script op not started).
    Ready,
    /// `NativeOp` push: indices read, capacity checked; next write slot.
    PushIdx { b: u64 },
    /// `NativeOp` push: slot written; next publish `bottom = b + 1`.
    PushWrote { b: u64 },
    /// `NativeOp` pop: `b, t` read, non-empty; next store `bottom = b-1`.
    PopDec { b: u64 },
    /// `NativeOp` pop: bottom stored; next the top re-check.
    PopRecheck { b: u64 },
    /// `NativeOp` pop conflict: next restore `bottom = b`.
    PopRestore { b: u64 },
    /// `NativeOp` pop conflict: bottom restored; next TAS the lock
    /// (enabled only while the lock is free — the TATAS spin is a
    /// stutter step the explorer elides).
    PopLock { b: u64 },
    /// `NativeOp` pop conflict: lock held; next locked top re-read.
    PopLocked { b: u64 },
    /// `NativeOp` pop conflict: thief lost; next take entry `b - 1`.
    PopTake { b: u64 },
    /// `NativeOp` pop: release the lock, completing the op.
    PopUnlock { took: bool },
}

/// Program counter of a thief thread, across one steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ThiefPc {
    /// Between attempts.
    Idle,
    /// `SimPhase`: empty check passed; next phase 2 (FAA).
    SimChecked,
    /// `SimPhase`: lock acquired; next phase 3.
    SimLocked,
    /// `SimPhase`: phase 3 done; next phase 4 (unlock). `stole` is the
    /// kept value, if any.
    SimUnlockPending { stole: bool },
    /// `NativeOp`: pre-check read `top`; next read `bottom`.
    NatPre { t: u64 },
    /// `NativeOp`: pre-check passed; next CAS the lock.
    NatCas,
    /// `NativeOp`: lock held; next locked read of `top`.
    NatL1,
    /// `NativeOp`: locked `top` read; next locked read of `bottom`.
    NatL2 { t: u64 },
    /// `NativeOp`: next the locked slot read. The value is *kept* at
    /// that read: the lock pins `top` at `t`, and the owner's strict
    /// fast-path bound (`top < bottom - 1`) keeps it away from position
    /// `t`, so the entry is exclusively ours before we publish anything.
    NatReadSlot { t: u64 },
    /// `NativeOp`: value kept; next publish the claim `top = t + 1`.
    NatClaim { t: u64 },
    /// `NativeOp`: next release the lock, ending the attempt.
    NatUnlock { stole: bool },
}

/// One thread's control state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// The owner: index of the next script op plus an intra-op pc.
    Owner {
        /// Next op index in `Scenario::owner`.
        next: usize,
        /// Intra-op program counter.
        pc: OwnerPc,
    },
    /// A thief: remaining attempts plus an intra-attempt pc.
    Thief {
        /// Attempts not yet started.
        attempts_left: u32,
        /// Intra-attempt program counter.
        pc: ThiefPc,
    },
}

/// Full system state: the shared deque words plus every thread's control
/// state and the (sorted) multiset of values kept so far. `consumed` is
/// part of the state key so the memoized explorer distinguishes runs
/// that delivered different values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Sys {
    /// Lock word (0 = free; failed FAA increments accumulate until the
    /// holder's unlock WRITE of 0 erases them, as in `SimDeque`).
    pub lock: u64,
    /// Steal end (H). Monotonically nondecreasing: claims are only ever
    /// published for entries the claimant keeps.
    pub top: u64,
    /// Owner end (T).
    pub bottom: u64,
    /// Slot contents by slot index (`pos % capacity`); stale values
    /// remain after consumption, as in real memory.
    pub slots: Vec<u64>,
    /// All thread control states (owner first, then thieves).
    pub threads: Vec<ThreadState>,
    /// Values kept so far, sorted (for canonical hashing).
    pub consumed: Vec<u64>,
}

/// What a step did, for replay, tracing, and invariant checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpEvent {
    /// Internal micro-step; nothing protocol-visible completed.
    Micro,
    /// Owner push completed.
    PushDone(u64),
    /// Owner pop completed (`None` = empty).
    PopDone(Option<u64>),
    /// Thief phase 1 completed.
    EmptyCheck {
        /// Whether the check aborted the attempt.
        empty: bool,
    },
    /// Thief phase 2 completed.
    LockTry {
        /// Whether the FAA observed 0 (lock acquired).
        acquired: bool,
    },
    /// Thief phase 3 completed (`None` = raced empty; unlock still due).
    StealPhase(Option<u64>),
    /// Thief phase 4 completed.
    Unlock,
}

/// The result of executing one step.
#[derive(Clone, Debug)]
pub struct StepOut {
    /// Human-readable description ("thief 1: claim top=3").
    pub label: String,
    /// Read/write footprint (drives sleep-set independence).
    pub acc: Access,
    /// Value kept by this step, if any.
    pub kept: Option<u64>,
    /// True if `kept` was already consumed — a double claim.
    pub dup: bool,
    /// Protocol-visible completion, for differential replay.
    pub event: OpEvent,
}

impl Sys {
    /// Initial state for a scenario, with the prologue already applied.
    pub fn initial(sc: &Scenario) -> Sys {
        assert!(
            sc.capacity >= 1 && sc.capacity <= 13,
            "capacity must fit the Access bitmask"
        );
        let mut threads = vec![ThreadState::Owner {
            next: 0,
            pc: OwnerPc::Ready,
        }];
        for &a in &sc.thieves {
            threads.push(ThreadState::Thief {
                attempts_left: a,
                pc: ThiefPc::Idle,
            });
        }
        let mut sys = Sys {
            lock: 0,
            top: 0,
            bottom: 0,
            slots: vec![0; sc.capacity as usize],
            threads,
            consumed: Vec::new(),
        };
        for (i, &op) in sc.prologue.iter().enumerate() {
            match op {
                OwnerOp::Push(v) => {
                    assert!(
                        sys.bottom - sys.top < sc.capacity,
                        "prologue overflow at op {i}"
                    );
                    let slot = (sys.bottom % sc.capacity) as usize;
                    sys.slots[slot] = v;
                    sys.bottom += 1;
                }
                OwnerOp::Pop => {
                    assert!(
                        sys.bottom > sys.top,
                        "prologue pop on empty deque at op {i}"
                    );
                    sys.bottom -= 1;
                }
            }
        }
        assert_eq!(sys.top, sys.bottom, "prologue must leave the deque empty");
        sys
    }

    fn slot_of(&self, pos: u64) -> usize {
        (pos % self.slots.len() as u64) as usize
    }

    /// Whether thread `ti` has finished all its work.
    pub fn done(&self, ti: usize, sc: &Scenario) -> bool {
        match &self.threads[ti] {
            ThreadState::Owner { next, pc } => *pc == OwnerPc::Ready && *next >= sc.owner.len(),
            ThreadState::Thief { attempts_left, pc } => *pc == ThiefPc::Idle && *attempts_left == 0,
        }
    }

    /// Whether thread `ti` can take a step. Spin/retry situations — the
    /// simulator owner's `Contended` pop and the native owner's TATAS
    /// lock wait — are modeled as *disabled until the lock frees*, which
    /// is the stutter pruning: executing the retry would not change the
    /// state, so the explorer skips straight to the wake-up.
    pub fn enabled(&self, ti: usize, sc: &Scenario) -> bool {
        if self.done(ti, sc) {
            return false;
        }
        match &self.threads[ti] {
            ThreadState::Owner { next, pc } => match (pc, sc.family) {
                (OwnerPc::Ready, Family::SimPhase) => {
                    // Stutter: Contended pop (empty deque, lock held)
                    // would re-schedule without effect.
                    !(matches!(sc.owner[*next], OwnerOp::Pop)
                        && self.bottom == self.top
                        && self.lock != 0)
                }
                (OwnerPc::Ready, Family::NativeOp) => {
                    // Only reachable under a seeded mutation: a correct
                    // run never lets the owner start a push while
                    // `top > bottom` (a mutated double claim can leave
                    // the indices crossed for good). Real code would
                    // trip the capacity assertion; model it as blocked
                    // so such runs surface as `Stuck` instead of
                    // panicking the explorer.
                    !(matches!(sc.owner[*next], OwnerOp::Push(_)) && self.top > self.bottom)
                }
                (OwnerPc::PopLock { .. }, _) => self.lock == 0,
                _ => true,
            },
            ThreadState::Thief { .. } => true,
        }
    }

    /// Execute thread `ti`'s next step. Panics on model-internal
    /// impossibilities (overflow under a well-sized scenario).
    pub fn step(&mut self, ti: usize, sc: &Scenario) -> StepOut {
        debug_assert!(self.enabled(ti, sc));
        match self.threads[ti].clone() {
            ThreadState::Owner { next, pc } => self.owner_step(ti, next, pc, sc),
            ThreadState::Thief { attempts_left, pc } => self.thief_step(ti, attempts_left, pc, sc),
        }
    }

    fn keep(&mut self, v: u64) -> (Option<u64>, bool) {
        match self.consumed.binary_search(&v) {
            Ok(_) => (Some(v), true),
            Err(i) => {
                self.consumed.insert(i, v);
                (Some(v), false)
            }
        }
    }

    fn out(label: String, acc: Access, event: OpEvent) -> StepOut {
        StepOut {
            label,
            acc,
            kept: None,
            dup: false,
            event,
        }
    }

    fn owner_step(&mut self, ti: usize, next: usize, pc: OwnerPc, sc: &Scenario) -> StepOut {
        let set = |s: &mut Sys, next, pc| s.threads[ti] = ThreadState::Owner { next, pc };
        match (pc, sc.family) {
            (OwnerPc::Ready, Family::SimPhase) => match sc.owner[next] {
                OwnerOp::Push(v) => {
                    assert!(self.bottom - self.top < sc.capacity, "owner push overflow");
                    let slot = self.slot_of(self.bottom);
                    self.slots[slot] = v;
                    let b = self.bottom;
                    self.bottom = b + 1;
                    set(self, next + 1, OwnerPc::Ready);
                    Self::out(
                        format!("owner: push v{v} at pos {b} (slot {slot})"),
                        Access::rw(LOC_TOP | LOC_BOTTOM, LOC_BOTTOM | loc_slot(slot as u64)),
                        OpEvent::PushDone(v),
                    )
                }
                OwnerOp::Pop => {
                    // Mirrors SimDeque::pop at event atomicity. The
                    // enabledness check already excluded Contended.
                    let (b, t) = (self.bottom, self.top);
                    if b == t {
                        assert_eq!(self.lock, 0);
                        set(self, next + 1, OwnerPc::Ready);
                        return Self::out(
                            "owner: pop -> empty".to_string(),
                            Access::r(LOC_TOP | LOC_BOTTOM | LOC_LOCK),
                            OpEvent::PopDone(None),
                        );
                    }
                    let nb = b - 1;
                    let conflict = t > nb && sc.mutation != Mutation::SkipOwnerTopRecheck;
                    assert!(
                        !conflict,
                        "SimDeque pop conflict path is unreachable at event atomicity \
                         (top cannot move inside an atomic pop)"
                    );
                    self.bottom = nb;
                    let slot = self.slot_of(nb);
                    let v = self.slots[slot];
                    let (kept, dup) = self.keep(v);
                    set(self, next + 1, OwnerPc::Ready);
                    StepOut {
                        label: format!("owner: pop -> keeps v{v} from pos {nb}"),
                        acc: Access::rw(
                            LOC_TOP | LOC_BOTTOM | LOC_LOCK | loc_slot(slot as u64),
                            LOC_BOTTOM,
                        ),
                        kept,
                        dup,
                        event: OpEvent::PopDone(Some(v)),
                    }
                }
            },
            (OwnerPc::Ready, Family::NativeOp) => match sc.owner[next] {
                OwnerOp::Push(_) => {
                    // Read indices + capacity check. `bottom` is
                    // owner-owned, so folding its read in costs nothing.
                    // `t <= b` here is a protocol theorem the checker
                    // itself establishes (the enabledness guard blocks
                    // the mutated counterexamples that break it).
                    let (b, t) = (self.bottom, self.top);
                    assert!(t <= b && b - t < sc.capacity, "owner push overflow");
                    set(self, next, OwnerPc::PushIdx { b });
                    Self::out(
                        format!("owner: push reads top={t}, bottom={b} (capacity ok)"),
                        Access::r(LOC_TOP | LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
                OwnerOp::Pop => {
                    let (b, t) = (self.bottom, self.top);
                    if t >= b {
                        set(self, next + 1, OwnerPc::Ready);
                        return Self::out(
                            format!("owner: pop reads top={t} >= bottom={b} -> empty"),
                            Access::r(LOC_TOP | LOC_BOTTOM),
                            OpEvent::PopDone(None),
                        );
                    }
                    set(self, next, OwnerPc::PopDec { b });
                    Self::out(
                        format!("owner: pop reads top={t}, bottom={b}"),
                        Access::r(LOC_TOP | LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
            },
            (OwnerPc::PushIdx { b }, _) => {
                let OwnerOp::Push(v) = sc.owner[next] else {
                    unreachable!()
                };
                let slot = self.slot_of(b);
                self.slots[slot] = v;
                set(self, next, OwnerPc::PushWrote { b });
                Self::out(
                    format!("owner: push writes v{v} to slot {slot}"),
                    Access::rw(0, loc_slot(slot as u64)),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PushWrote { b }, _) => {
                let OwnerOp::Push(v) = sc.owner[next] else {
                    unreachable!()
                };
                self.bottom = b + 1;
                set(self, next + 1, OwnerPc::Ready);
                Self::out(
                    format!("owner: push publishes bottom={}", b + 1),
                    Access::rw(0, LOC_BOTTOM),
                    OpEvent::PushDone(v),
                )
            }
            (OwnerPc::PopDec { b }, _) => {
                self.bottom = b - 1;
                set(self, next, OwnerPc::PopRecheck { b });
                Self::out(
                    format!("owner: pop stores bottom={}", b - 1),
                    Access::rw(0, LOC_BOTTOM),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PopRecheck { b }, _) => {
                let nb = b - 1;
                if sc.mutation == Mutation::SkipOwnerTopRecheck {
                    // Mutation: the fast path no longer consults `top`.
                    let slot = self.slot_of(nb);
                    let v = self.slots[slot];
                    let (kept, dup) = self.keep(v);
                    set(self, next + 1, OwnerPc::Ready);
                    return StepOut {
                        label: format!(
                            "owner: pop [MUTATED: no top re-check] keeps v{v} from pos {nb}"
                        ),
                        acc: Access::r(loc_slot(slot as u64)),
                        kept,
                        dup,
                        event: OpEvent::PopDone(Some(v)),
                    };
                }
                let t = self.top;
                // The sound bound is strict: position nb is taken
                // lock-free only when it provably is no thief's target.
                // `LastEntryFastPath` restores the original `t <= nb`,
                // which also takes the last entry while a locked thief
                // may already be committed to it.
                let fast = t < nb || (sc.mutation == Mutation::LastEntryFastPath && t == nb);
                if fast {
                    let slot = self.slot_of(nb);
                    let v = self.slots[slot];
                    let (kept, dup) = self.keep(v);
                    let mutated = if t == nb {
                        " [MUTATED: lock-free last entry]"
                    } else {
                        ""
                    };
                    set(self, next + 1, OwnerPc::Ready);
                    StepOut {
                        label: format!(
                            "owner: pop re-reads top={t} <= {nb} -> keeps v{v}{mutated}"
                        ),
                        acc: Access::r(LOC_TOP | loc_slot(slot as u64)),
                        kept,
                        dup,
                        event: OpEvent::PopDone(Some(v)),
                    }
                } else {
                    set(self, next, OwnerPc::PopRestore { b });
                    Self::out(
                        format!("owner: pop re-reads top={t} >= {nb} -> lock arbitration"),
                        Access::r(LOC_TOP),
                        OpEvent::Micro,
                    )
                }
            }
            (OwnerPc::PopRestore { b }, _) => {
                self.bottom = b;
                set(self, next, OwnerPc::PopLock { b });
                Self::out(
                    format!("owner: pop restores bottom={b}"),
                    Access::rw(0, LOC_BOTTOM),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PopLock { b }, _) => {
                assert_eq!(
                    self.lock, 0,
                    "PopLock is enabled only while the lock is free"
                );
                self.lock = 1;
                set(self, next, OwnerPc::PopLocked { b });
                Self::out(
                    "owner: pop TAS acquires lock".to_string(),
                    Access::rw(LOC_LOCK, LOC_LOCK),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PopLocked { b }, _) => {
                let t = self.top;
                if t >= b {
                    set(self, next, OwnerPc::PopUnlock { took: false });
                    Self::out(
                        format!("owner: pop locked re-read top={t} >= {b} -> thief won"),
                        Access::r(LOC_TOP),
                        OpEvent::Micro,
                    )
                } else {
                    set(self, next, OwnerPc::PopTake { b });
                    Self::out(
                        format!("owner: pop locked re-read top={t} < {b} -> take"),
                        Access::r(LOC_TOP),
                        OpEvent::Micro,
                    )
                }
            }
            (OwnerPc::PopTake { b }, _) => {
                self.bottom = b - 1;
                let slot = self.slot_of(b - 1);
                let v = self.slots[slot];
                let (kept, dup) = self.keep(v);
                set(self, next, OwnerPc::PopUnlock { took: true });
                StepOut {
                    label: format!("owner: pop keeps v{v} under lock"),
                    acc: Access::rw(loc_slot(slot as u64), LOC_BOTTOM),
                    kept,
                    dup,
                    event: OpEvent::PopDone(Some(v)),
                }
            }
            (OwnerPc::PopUnlock { took }, _) => {
                self.lock = 0;
                set(self, next + 1, OwnerPc::Ready);
                let event = if took {
                    OpEvent::Micro
                } else {
                    OpEvent::PopDone(None)
                };
                Self::out(
                    "owner: pop releases lock".to_string(),
                    Access::rw(0, LOC_LOCK),
                    event,
                )
            }
        }
    }

    fn thief_step(&mut self, ti: usize, attempts: u32, pc: ThiefPc, sc: &Scenario) -> StepOut {
        let name = format!("thief {ti}");
        let set = |s: &mut Sys, attempts_left, pc| {
            s.threads[ti] = ThreadState::Thief { attempts_left, pc };
        };
        match (pc, sc.family) {
            // ---- SimPhase: one step per RDMA phase --------------------
            (ThiefPc::Idle, Family::SimPhase) => {
                let empty = self.top >= self.bottom;
                if empty {
                    set(self, attempts - 1, ThiefPc::Idle);
                } else {
                    set(self, attempts, ThiefPc::SimChecked);
                }
                Self::out(
                    format!(
                        "{name}: phase1 empty-check READ top={}, bottom={} -> {}",
                        self.top,
                        self.bottom,
                        if empty { "empty, abort" } else { "continue" }
                    ),
                    Access::r(LOC_TOP | LOC_BOTTOM),
                    OpEvent::EmptyCheck { empty },
                )
            }
            (ThiefPc::SimChecked, Family::SimPhase) => {
                let old = self.lock;
                self.lock += 1;
                let acquired = old == 0;
                if acquired {
                    set(self, attempts, ThiefPc::SimLocked);
                } else {
                    set(self, attempts - 1, ThiefPc::Idle);
                }
                Self::out(
                    format!(
                        "{name}: phase2 FAA(lock,+1) old={old} -> {}",
                        if acquired { "acquired" } else { "busy, abort" }
                    ),
                    Access::rw(LOC_LOCK, LOC_LOCK),
                    OpEvent::LockTry { acquired },
                )
            }
            (ThiefPc::SimLocked, Family::SimPhase) => {
                let (t, b) = (self.top, self.bottom);
                if t >= b {
                    if sc.mutation == Mutation::SkipUnlockOnRacedEmpty {
                        // Mutation: the thief forgets its unlock duty.
                        set(self, attempts - 1, ThiefPc::Idle);
                        return Self::out(
                            format!("{name}: phase3 raced empty [MUTATED: unlock dropped]"),
                            Access::r(LOC_TOP | LOC_BOTTOM),
                            OpEvent::StealPhase(None),
                        );
                    }
                    set(self, attempts, ThiefPc::SimUnlockPending { stole: false });
                    return Self::out(
                        format!("{name}: phase3 READ top={t} >= bottom={b} -> raced empty"),
                        Access::r(LOC_TOP | LOC_BOTTOM),
                        OpEvent::StealPhase(None),
                    );
                }
                let slot = self.slot_of(t);
                let v = self.slots[slot];
                self.top = t + 1;
                let (kept, dup) = self.keep(v);
                set(self, attempts, ThiefPc::SimUnlockPending { stole: true });
                StepOut {
                    label: format!(
                        "{name}: phase3 READ entry v{v} at pos {t}, WRITE top={}",
                        t + 1
                    ),
                    acc: Access::rw(LOC_TOP | LOC_BOTTOM | loc_slot(slot as u64), LOC_TOP),
                    kept,
                    dup,
                    event: OpEvent::StealPhase(Some(v)),
                }
            }
            (ThiefPc::SimUnlockPending { .. }, Family::SimPhase) => {
                self.lock = 0;
                set(self, attempts - 1, ThiefPc::Idle);
                Self::out(
                    format!("{name}: phase4 WRITE lock=0"),
                    Access::rw(0, LOC_LOCK),
                    OpEvent::Unlock,
                )
            }
            // ---- NativeOp: one step per atomic access -----------------
            (ThiefPc::Idle, Family::NativeOp) => {
                let t = self.top;
                set(self, attempts, ThiefPc::NatPre { t });
                Self::out(
                    format!("{name}: pre-check loads top={t}"),
                    Access::r(LOC_TOP),
                    OpEvent::Micro,
                )
            }
            (ThiefPc::NatPre { t }, _) => {
                let b = self.bottom;
                if t >= b {
                    set(self, attempts - 1, ThiefPc::Idle);
                    Self::out(
                        format!("{name}: pre-check loads bottom={b} <= top -> abort"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::StealPhase(None),
                    )
                } else {
                    set(self, attempts, ThiefPc::NatCas);
                    Self::out(
                        format!("{name}: pre-check loads bottom={b} -> continue"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
            }
            (ThiefPc::NatCas, _) => {
                if self.lock == 0 {
                    self.lock = 1;
                    set(self, attempts, ThiefPc::NatL1);
                    Self::out(
                        format!("{name}: CAS(lock 0->1) acquired"),
                        Access::rw(LOC_LOCK, LOC_LOCK),
                        OpEvent::LockTry { acquired: true },
                    )
                } else {
                    set(self, attempts - 1, ThiefPc::Idle);
                    Self::out(
                        format!("{name}: CAS(lock) failed -> abort"),
                        Access::rw(LOC_LOCK, 0),
                        OpEvent::LockTry { acquired: false },
                    )
                }
            }
            (ThiefPc::NatL1, _) => {
                let t = self.top;
                set(self, attempts, ThiefPc::NatL2 { t });
                Self::out(
                    format!("{name}: locked load top={t}"),
                    Access::r(LOC_TOP),
                    OpEvent::Micro,
                )
            }
            (ThiefPc::NatL2 { t }, _) => {
                let b = self.bottom;
                if t >= b {
                    if sc.mutation == Mutation::SkipUnlockOnRacedEmpty {
                        set(self, attempts - 1, ThiefPc::Idle);
                        return Self::out(
                            format!("{name}: locked empty [MUTATED: unlock dropped]"),
                            Access::r(LOC_BOTTOM),
                            OpEvent::StealPhase(None),
                        );
                    }
                    set(self, attempts, ThiefPc::NatUnlock { stole: false });
                    Self::out(
                        format!("{name}: locked load bottom={b} <= top={t} -> empty"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                } else {
                    set(self, attempts, ThiefPc::NatReadSlot { t });
                    Self::out(
                        format!("{name}: locked load bottom={b} -> entry at pos {t}"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
            }
            (ThiefPc::NatReadSlot { t }, _) => {
                let slot = self.slot_of(t);
                let v = self.slots[slot];
                // The value is kept at the read: the lock pins `top`,
                // and the owner's strict fast-path bound means no other
                // party can take position t (the checker verifies that
                // claim via the double-claim invariant).
                let (kept, dup) = self.keep(v);
                set(self, attempts, ThiefPc::NatClaim { t });
                StepOut {
                    label: format!("{name}: locked read slot {slot} -> keeps v{v}"),
                    acc: Access::r(loc_slot(slot as u64)),
                    kept,
                    dup,
                    event: OpEvent::Micro,
                }
            }
            (ThiefPc::NatClaim { t }, _) => {
                self.top = t + 1;
                set(self, attempts, ThiefPc::NatUnlock { stole: true });
                Self::out(
                    format!("{name}: publishes claim top={}", t + 1),
                    Access::rw(0, LOC_TOP),
                    OpEvent::Micro,
                )
            }
            (ThiefPc::NatUnlock { stole }, _) => {
                self.lock = 0;
                set(self, attempts - 1, ThiefPc::Idle);
                Self::out(
                    format!(
                        "{name}: releases lock (attempt {})",
                        if stole { "stole" } else { "failed" }
                    ),
                    Access::rw(0, LOC_LOCK),
                    OpEvent::Unlock,
                )
            }
            (pc, fam) => unreachable!("thief pc {pc:?} invalid in family {fam:?}"),
        }
    }
}
