//! Small-step state machines for the THE-protocol steal path.
//!
//! The shared state is the deque's four memory regions — the lock word,
//! `top`, `bottom`, and the entry slots — exactly the words of the
//! canonical `uat_deque::layout` that `SimDeque` lays out in fabric
//! memory and `NativeDeque` keeps in atomics (the location bit-masks
//! below are derived from those offsets). Two thread kinds step over it:
//!
//! - the **owner**, running a fixed script of `push`/`pop` ops, and
//! - **thieves**, each running a fixed number of steal attempts
//!   (empty-check → lock → steal → unlock).
//!
//! Each model family fixes the *atomicity granularity*:
//!
//! - [`Family::SimPhase`] — one step per simulator event, mirroring how
//!   the discrete-event engine executes the protocol: owner `push`/`pop`
//!   are single atomic steps (they are plain local memory ops inside one
//!   engine event) and each thief RDMA phase (Figure 6 / Table 3) is a
//!   single atomic step, because `Fabric` linearizes every one-sided op
//!   at its issue instant.
//! - [`Family::NativeOp`] — one step per *shared memory access*,
//!   mirroring `NativeDeque`'s individual atomic loads/stores/RMWs. This
//!   is the granularity at which the last-entry arbitration can actually
//!   go wrong — an owner's pop and a locked thief's critical section
//!   overlap access-by-access — which phase-atomic models cannot see.
//!
//! Orthogonally, [`MemModel`] fixes the *memory semantics*: under
//! [`MemModel::Sc`] every access sees the single authoritative value
//! (the PR 3 behavior); under [`MemModel::Ra`] each access carries the
//! [`MemOrd`] declared at the matching `NativeDeque` site ([`OrdSpec`])
//! and loads branch over every message the C11 release/acquire rules let
//! them read — see [`crate::memory`]. `NativeOp` scenarios can also
//! model the **batched steal** extension ahead of its native
//! implementation: with [`Scenario::batch`] `= k`, a locked thief
//! transfers up to `k` entries per critical section and the owner's
//! lock-free pop bound widens from `top < bottom-1` to
//! `top + k <= bottom-1` (the shipped protocol is exactly the `k = 1`
//! case).
//!
//! [`Mutation`]s re-introduce specific protocol regressions so the
//! checker can demonstrate a counterexample trace for each (and so a
//! future refactor that reintroduces one is caught by the suite). The
//! ordering-downgrade mutations only weaken an [`OrdSpec`] entry: under
//! `Sc` they are invisible by construction, and the suite proves the
//! `Ra` explorer catches every one of them.

use crate::memory::{LoadOut, Mem, MemModel, MemOrd};

/// Shared-memory location classes, used for the independence relation
/// behind sleep-set pruning. Slot indices are per-capacity (`pos % cap`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Bitmask of locations read (bit 0 = lock, 1 = top, 2 = bottom,
    /// 3+i = slot i).
    pub reads: u32,
    /// Bitmask of locations written.
    pub writes: u32,
}

use uat_deque::layout::{loc_bit, OFF_BOTTOM, OFF_ENTRIES, OFF_LOCK, OFF_TOP};

const LOC_LOCK: u32 = 1 << loc_bit(OFF_LOCK);
const LOC_TOP: u32 = 1 << loc_bit(OFF_TOP);
const LOC_BOTTOM: u32 = 1 << loc_bit(OFF_BOTTOM);
/// First slot bit: the word index where the entries begin.
const LOC_SLOT0: u32 = loc_bit(OFF_ENTRIES);

/// Location *indices* for the memory subsystem (same numbering as the
/// `Access` bits: the word index within the canonical layout).
const IDX_LOCK: usize = loc_bit(OFF_LOCK) as usize;
const IDX_TOP: usize = loc_bit(OFF_TOP) as usize;
const IDX_BOTTOM: usize = loc_bit(OFF_BOTTOM) as usize;
const IDX_SLOT0: usize = loc_bit(OFF_ENTRIES) as usize;

fn loc_slot(slot: u64) -> u32 {
    assert!(slot < 16, "model supports capacities up to 16");
    1 << (LOC_SLOT0 + slot as u32)
}

fn idx_slot(slot: u64) -> usize {
    IDX_SLOT0 + slot as usize
}

impl Access {
    fn r(mask: u32) -> Access {
        Access {
            reads: mask,
            writes: 0,
        }
    }

    fn rw(reads: u32, writes: u32) -> Access {
        Access { reads, writes }
    }

    /// Two steps are independent iff neither writes a location the other
    /// touches — disjoint read/write footprints commute and preserve each
    /// other's enabledness (enabledness conditions are included in the
    /// read sets).
    pub fn independent(self, other: Access) -> bool {
        self.writes & (other.reads | other.writes) == 0
            && other.writes & (self.reads | self.writes) == 0
    }
}

/// Atomicity granularity of a scenario (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Simulator-faithful: owner ops and thief RDMA phases are atomic.
    SimPhase,
    /// `NativeDeque`-faithful: one step per shared atomic access.
    NativeOp,
}

/// The per-access-site memory orderings of a `NativeOp` scenario,
/// mirroring the `Ordering` arguments at each `NativeDeque` call site
/// one-for-one (`crates/deque/src/native.rs`). [`OrdSpec::native`] is
/// the shipped deque; ordering-downgrade [`Mutation`]s weaken exactly
/// one entry. Under [`MemModel::Sc`] the spec is ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrdSpec {
    /// `push`: the `top` load feeding the capacity check.
    pub push_read_top: MemOrd,
    /// `push`: the entry write (plain store, modeled `Relaxed`).
    pub push_write_slot: MemOrd,
    /// `push`: the publishing `bottom` store.
    pub push_publish: MemOrd,
    /// `pop`: the initial `top` load.
    pub pop_read_top0: MemOrd,
    /// `pop`: the speculative `bottom` decrement (Dekker store side).
    pub pop_dec_bottom: MemOrd,
    /// `pop`: the `top` re-read after the decrement (Dekker load side).
    pub pop_reread_top: MemOrd,
    /// `pop`: the `bottom` restore before lock arbitration.
    pub pop_restore_bottom: MemOrd,
    /// `pop`: the locked `top` re-read.
    pub pop_locked_top: MemOrd,
    /// `pop`: the locked `bottom` store when the owner wins.
    pub pop_take_bottom: MemOrd,
    /// Lock CAS success ordering (owner TATAS and thief try-lock).
    pub lock_cas: MemOrd,
    /// Unlock store (owner and thief).
    pub unlock: MemOrd,
    /// `steal` pre-check: the `top` load.
    pub pre_top: MemOrd,
    /// `steal` pre-check: the `bottom` load (the publication edge
    /// pairing with `push_publish`).
    pub pre_bottom: MemOrd,
    /// `steal`: the locked `top` load.
    pub locked_top: MemOrd,
    /// `steal`: the locked `bottom` load (Dekker load side).
    pub locked_bottom: MemOrd,
    /// `steal`: the entry read (plain load, modeled `Relaxed`).
    pub slot_read: MemOrd,
    /// `steal`: the claim-publishing `top` store (Dekker store side
    /// pairing with `pop_reread_top`).
    pub claim_top: MemOrd,
}

impl OrdSpec {
    /// The orderings `NativeDeque` declares (see DESIGN.md §11 for the
    /// invariant each one protects).
    pub fn native() -> OrdSpec {
        OrdSpec {
            push_read_top: MemOrd::Acquire,
            push_write_slot: MemOrd::Relaxed,
            push_publish: MemOrd::Release,
            pop_read_top0: MemOrd::Relaxed,
            pop_dec_bottom: MemOrd::SeqCst,
            pop_reread_top: MemOrd::SeqCst,
            pop_restore_bottom: MemOrd::SeqCst,
            pop_locked_top: MemOrd::Relaxed,
            pop_take_bottom: MemOrd::Relaxed,
            lock_cas: MemOrd::Acquire,
            unlock: MemOrd::Release,
            pre_top: MemOrd::Acquire,
            pre_bottom: MemOrd::Acquire,
            locked_top: MemOrd::Relaxed,
            locked_bottom: MemOrd::SeqCst,
            slot_read: MemOrd::Relaxed,
            claim_top: MemOrd::SeqCst,
        }
    }
}

/// A seeded protocol regression for mutation smoke-checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Unmodified protocol — the checker must find zero violations.
    None,
    /// Delete the owner's top re-check after decrementing `bottom`: the
    /// pop always takes the fast path, so it can keep an entry a thief
    /// already stole (double claim).
    SkipOwnerTopRecheck,
    /// Drop phase 4 when phase 3 finds the deque drained: the lock word
    /// is never rewritten to 0 (lock leak, and the owner's contended pop
    /// wedges forever).
    SkipUnlockOnRacedEmpty,
    /// `NativeOp` only: the owner's original fast-path bound — take the
    /// last entry (`top == bottom - 1` after the decrement) lock-free
    /// whenever the top re-read shows no *published* claim, instead of
    /// arbitrating it under the lock. A thief already inside its locked
    /// critical section has loaded `top` and `bottom` but not yet
    /// advanced `top`, so the owner's re-read looks clean while both
    /// sides go on to keep the same entry. This is the latent bug
    /// `uat-check` found in the shipped `NativeDeque::pop`.
    LastEntryFastPath,
    /// Ordering downgrade (`Ra` only): `push`'s publishing `bottom`
    /// store `Release -> Relaxed`. The entry write no longer
    /// happens-before the bottom bump, so a thief whose pre-check
    /// acquires the new bottom can still read the slot's stale previous
    /// contents — it keeps a value that was never pushed (and the real
    /// entry is lost). This is the downgrade the push-publish audit
    /// (ISSUE 8 satellite) proves unsafe; the explorer passing the clean
    /// suite with `Release` proves `SeqCst` was not needed.
    PushPublishRelaxed,
    /// Ordering downgrade (`Ra` only): `pop`'s speculative `bottom`
    /// decrement `SeqCst -> Release`. The Dekker store side leaves the
    /// SC order, so a locked thief's `SeqCst` bottom load may still read
    /// the pre-decrement value and steal an entry the owner's fast path
    /// is simultaneously taking.
    PopPublishRelease,
    /// Ordering downgrade (`Ra` only): the thief's locked `bottom` load
    /// `SeqCst -> Relaxed` — the Dekker load side of the same handshake,
    /// broken from the other end.
    StealBottomRelaxed,
    /// Ordering downgrade (`Ra` only): the unlock store
    /// `Release -> Relaxed`. The critical-section writes no longer
    /// transfer to the next lock holder, whose locked `Relaxed` re-reads
    /// then see stale `top` and double-claim.
    UnlockRelaxed,
    /// Ordering downgrade (`Ra` only): the lock CAS success ordering
    /// `Acquire -> Relaxed` — the same chain broken on the acquiring
    /// side.
    LockCasRelaxed,
    /// Ordering downgrade (`Ra` only): the thief's claim-publishing
    /// `top` store `SeqCst -> Release`. The claim leaves the SC order,
    /// so the owner's `SeqCst` top re-read can miss it, conclude the
    /// fast-path bound holds, and take a position a thief is already
    /// committed to.
    ClaimTopRelease,
    /// Batched steal (`batch >= 2` only): keep the `k = 1` owner
    /// fast-path bound `top < bottom - 1` instead of widening it to
    /// `top + k <= bottom - 1`. A locked thief transferring `k` entries
    /// reaches positions the narrow bound wrongly treats as
    /// owner-exclusive — caught even under SC, which is why the bound
    /// must widen before native batching ships (ROADMAP item 3).
    BatchNarrowOwnerBound,
}

impl Mutation {
    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipOwnerTopRecheck => "owner-top-recheck",
            Mutation::SkipUnlockOnRacedEmpty => "unlock-drop",
            Mutation::LastEntryFastPath => "last-entry-fast-path",
            Mutation::PushPublishRelaxed => "push-publish-weak",
            Mutation::PopPublishRelease => "pop-publish-weak",
            Mutation::StealBottomRelaxed => "steal-bottom-weak",
            Mutation::UnlockRelaxed => "unlock-weak",
            Mutation::LockCasRelaxed => "lock-cas-weak",
            Mutation::ClaimTopRelease => "claim-top-weak",
            Mutation::BatchNarrowOwnerBound => "batch-owner-bound",
        }
    }

    /// Whether this mutation is an ordering downgrade, observable only
    /// under [`MemModel::Ra`].
    pub fn is_ordering_downgrade(self) -> bool {
        matches!(
            self,
            Mutation::PushPublishRelaxed
                | Mutation::PopPublishRelease
                | Mutation::StealBottomRelaxed
                | Mutation::UnlockRelaxed
                | Mutation::LockCasRelaxed
                | Mutation::ClaimTopRelease
        )
    }
}

/// One owner-script operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnerOp {
    /// Push the value (values are unique per scenario; conservation is
    /// checked per value).
    Push(u64),
    /// Pop the youngest entry.
    Pop,
}

/// A closed system to check: owner script, thief attempt counts, deque
/// capacity, granularity, memory model, steal batch size, and an
/// optional seeded mutation.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Report name.
    pub name: &'static str,
    /// Atomicity granularity.
    pub family: Family,
    /// Memory semantics ([`MemModel::Ra`] requires `NativeOp`).
    pub mem_model: MemModel,
    /// Deque capacity (slots).
    pub capacity: u64,
    /// Max entries a locked thief transfers per critical section
    /// (`NativeOp`; 1 = the shipped protocol).
    pub batch: u64,
    /// Owner ops executed serially (at `SimPhase` atomicity) before the
    /// interleaved part, to advance positions past slot wraparound. Must
    /// leave the deque empty.
    pub prologue: Vec<OwnerOp>,
    /// Owner ops explored under full interleaving.
    pub owner: Vec<OwnerOp>,
    /// Steal attempts per thief (one entry per thief).
    pub thieves: Vec<u32>,
    /// Seeded regression, or `Mutation::None`.
    pub mutation: Mutation,
}

impl Scenario {
    /// The ordering spec this scenario runs under: the shipped native
    /// orderings with the mutation's single downgrade applied.
    pub fn ords(&self) -> OrdSpec {
        let mut o = OrdSpec::native();
        match self.mutation {
            Mutation::PushPublishRelaxed => o.push_publish = MemOrd::Relaxed,
            Mutation::PopPublishRelease => o.pop_dec_bottom = MemOrd::Release,
            Mutation::StealBottomRelaxed => o.locked_bottom = MemOrd::Relaxed,
            Mutation::UnlockRelaxed => o.unlock = MemOrd::Relaxed,
            Mutation::LockCasRelaxed => o.lock_cas = MemOrd::Relaxed,
            Mutation::ClaimTopRelease => o.claim_top = MemOrd::Release,
            _ => {}
        }
        o
    }
}

/// Program counter of the owner thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OwnerPc {
    /// Between ops (next script op not started).
    Ready,
    /// `NativeOp` push: indices read, capacity checked; next write slot.
    PushIdx { b: u64 },
    /// `NativeOp` push: slot written; next publish `bottom = b + 1`.
    PushWrote { b: u64 },
    /// `NativeOp` pop: `b, t` read, non-empty; next store `bottom = b-1`.
    PopDec { b: u64 },
    /// `NativeOp` pop: bottom stored; next the top re-check.
    PopRecheck { b: u64 },
    /// `NativeOp` pop conflict: next restore `bottom = b`.
    PopRestore { b: u64 },
    /// `NativeOp` pop conflict: bottom restored; next TAS the lock
    /// (enabled only while the lock is free — the TATAS spin is a
    /// stutter step the explorer elides).
    PopLock { b: u64 },
    /// `NativeOp` pop conflict: lock held; next locked top re-read.
    PopLocked { b: u64 },
    /// `NativeOp` pop conflict: thief lost; next take entry `b - 1`.
    PopTake { b: u64 },
    /// `NativeOp` pop: release the lock, completing the op.
    PopUnlock { took: bool },
}

/// Program counter of a thief thread, across one steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ThiefPc {
    /// Between attempts.
    Idle,
    /// `SimPhase`: empty check passed; next phase 2 (FAA).
    SimChecked,
    /// `SimPhase`: lock acquired; next phase 3.
    SimLocked,
    /// `SimPhase`: phase 3 done; next phase 4 (unlock). `stole` is the
    /// kept value, if any.
    SimUnlockPending { stole: bool },
    /// `NativeOp`: pre-check read `top`; next read `bottom`.
    NatPre { t: u64 },
    /// `NativeOp`: pre-check passed; next CAS the lock.
    NatCas,
    /// `NativeOp`: lock held; next locked read of `top`.
    NatL1,
    /// `NativeOp`: locked `top` read; next locked read of `bottom`.
    NatL2 { t: u64 },
    /// `NativeOp`: next locked read of slot `t + i` (of `k` being
    /// transferred this critical section). The value is *kept* at that
    /// read: the lock pins `top` at `t`, and the owner's fast-path bound
    /// (`top + batch <= bottom - 1`) keeps it away from positions
    /// `[t, t + k)`, so the entries are exclusively ours before we
    /// publish anything.
    NatReadSlot { t: u64, k: u64, i: u64 },
    /// `NativeOp`: `k` values kept; next publish the claim
    /// `top = t + k`.
    NatClaim { t: u64, k: u64 },
    /// `NativeOp`: next release the lock, ending the attempt.
    NatUnlock { stole: bool },
}

/// One thread's control state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// The owner: index of the next script op plus an intra-op pc.
    Owner {
        /// Next op index in `Scenario::owner`.
        next: usize,
        /// Intra-op program counter.
        pc: OwnerPc,
    },
    /// A thief: remaining attempts plus an intra-attempt pc.
    Thief {
        /// Attempts not yet started.
        attempts_left: u32,
        /// Intra-attempt program counter.
        pc: ThiefPc,
    },
}

/// Full system state: the shared memory (single-valued under SC,
/// histories + views under RA — see [`crate::memory`]) plus every
/// thread's control state and the (sorted) multiset of values kept so
/// far. `consumed` is part of the state key so the memoized explorer
/// distinguishes runs that delivered different values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Sys {
    /// The shared deque words.
    pub mem: Mem,
    /// All thread control states (owner first, then thieves).
    pub threads: Vec<ThreadState>,
    /// Values kept so far, sorted (for canonical hashing).
    pub consumed: Vec<u64>,
}

/// What a step did, for replay, tracing, and invariant checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpEvent {
    /// Internal micro-step; nothing protocol-visible completed.
    Micro,
    /// Owner push completed.
    PushDone(u64),
    /// Owner pop completed (`None` = empty).
    PopDone(Option<u64>),
    /// Thief phase 1 completed.
    EmptyCheck {
        /// Whether the check aborted the attempt.
        empty: bool,
    },
    /// Thief phase 2 completed.
    LockTry {
        /// Whether the FAA observed 0 (lock acquired).
        acquired: bool,
    },
    /// Thief phase 3 completed (`None` = raced empty; unlock still due).
    StealPhase(Option<u64>),
    /// Thief phase 4 completed.
    Unlock,
}

/// The result of executing one step.
#[derive(Clone, Debug)]
pub struct StepOut {
    /// Human-readable description ("thief 1: claim top=3"). Stale
    /// reads-from choices and mutated orderings are annotated inline.
    pub label: String,
    /// Read/write footprint (drives sleep-set independence).
    pub acc: Access,
    /// Value kept by this step, if any.
    pub kept: Option<u64>,
    /// True if `kept` was already consumed — a double claim.
    pub dup: bool,
    /// Protocol-visible completion, for differential replay.
    pub event: OpEvent,
}

/// Annotation appended to a step label when its ordering was downgraded
/// by the scenario's mutation.
fn ord_tag(actual: MemOrd, clean: MemOrd) -> String {
    if actual == clean {
        String::new()
    } else {
        format!(" [MUTATED: {} instead of {}]", actual.name(), clean.name())
    }
}

/// Annotation appended when a load took a stale reads-from choice.
fn stale_tag(l: LoadOut, what: &str, latest: u64) -> String {
    if l.stale {
        format!(" [STALE {what} read; latest is {latest}]")
    } else {
        String::new()
    }
}

impl Sys {
    /// Initial state for a scenario, with the prologue already applied
    /// (and, under `Ra`, fully synchronized: the runtime's deque
    /// construction happens-before any worker starting).
    pub fn initial(sc: &Scenario) -> Sys {
        assert!(
            sc.capacity >= 1 && sc.capacity <= 13,
            "capacity must fit the Access bitmask"
        );
        assert!(sc.batch >= 1, "batch size must be at least 1");
        if sc.batch > 1 {
            assert_eq!(
                sc.family,
                Family::NativeOp,
                "batched steals are modeled at NativeOp granularity"
            );
        }
        if sc.mem_model == MemModel::Ra {
            assert_eq!(
                sc.family,
                Family::NativeOp,
                "the RA model applies to per-access granularity only \
                 (SimPhase atomicity is the fabric's linearization)"
            );
            // The owner's capacity check reads `top` and a stale (older,
            // hence smaller) top makes the check strictly harder to
            // pass. Keep it satisfiable under the worst case (the
            // initial floor) so a legal weak behavior is never reported
            // as a model-internal overflow.
            let pushes = sc
                .owner
                .iter()
                .filter(|o| matches!(o, OwnerOp::Push(_)))
                .count() as u64;
            assert!(
                pushes <= sc.capacity,
                "RA scenarios need total pushes <= capacity (stale-top \
                 capacity check)"
            );
        }
        let mut threads = vec![ThreadState::Owner {
            next: 0,
            pc: OwnerPc::Ready,
        }];
        for &a in &sc.thieves {
            threads.push(ThreadState::Thief {
                attempts_left: a,
                pc: ThiefPc::Idle,
            });
        }
        // Apply the prologue on plain values, then seal them into the
        // memory model as the synchronized initial state.
        let mut vals = vec![0u64; IDX_SLOT0 + sc.capacity as usize];
        for (i, &op) in sc.prologue.iter().enumerate() {
            match op {
                OwnerOp::Push(v) => {
                    assert!(
                        vals[IDX_BOTTOM] - vals[IDX_TOP] < sc.capacity,
                        "prologue overflow at op {i}"
                    );
                    let slot = vals[IDX_BOTTOM] % sc.capacity;
                    vals[idx_slot(slot)] = v;
                    vals[IDX_BOTTOM] += 1;
                }
                OwnerOp::Pop => {
                    assert!(
                        vals[IDX_BOTTOM] > vals[IDX_TOP],
                        "prologue pop on empty deque at op {i}"
                    );
                    vals[IDX_BOTTOM] -= 1;
                }
            }
        }
        assert_eq!(
            vals[IDX_TOP], vals[IDX_BOTTOM],
            "prologue must leave the deque empty"
        );
        let nthreads = threads.len();
        Sys {
            mem: Mem::new(sc.mem_model, vals, nthreads),
            threads,
            consumed: Vec::new(),
        }
    }

    /// Latest lock word (modification order, not any thread's view).
    pub fn lock(&self) -> u64 {
        self.mem.latest(IDX_LOCK)
    }

    /// Latest `top`.
    pub fn top(&self) -> u64 {
        self.mem.latest(IDX_TOP)
    }

    /// Latest `bottom`.
    pub fn bottom(&self) -> u64 {
        self.mem.latest(IDX_BOTTOM)
    }

    /// Latest content of slot `idx`.
    pub fn slot(&self, idx: usize) -> u64 {
        self.mem.latest(IDX_SLOT0 + idx)
    }

    /// Slot count.
    pub fn capacity(&self) -> u64 {
        (self.mem.locs() - IDX_SLOT0) as u64
    }

    fn slot_of(&self, pos: u64) -> u64 {
        pos % self.capacity()
    }

    /// Whether thread `ti` has finished all its work.
    pub fn done(&self, ti: usize, sc: &Scenario) -> bool {
        match &self.threads[ti] {
            ThreadState::Owner { next, pc } => *pc == OwnerPc::Ready && *next >= sc.owner.len(),
            ThreadState::Thief { attempts_left, pc } => *pc == ThiefPc::Idle && *attempts_left == 0,
        }
    }

    /// Whether thread `ti` can take a step. Spin/retry situations — the
    /// simulator owner's `Contended` pop and the native owner's TATAS
    /// lock wait — are modeled as *disabled until the lock frees*, which
    /// is the stutter pruning: executing the retry would not change the
    /// state, so the explorer skips straight to the wake-up. Guards read
    /// the latest values (they model progress, not a thread's view).
    pub fn enabled(&self, ti: usize, sc: &Scenario) -> bool {
        if self.done(ti, sc) {
            return false;
        }
        match &self.threads[ti] {
            ThreadState::Owner { next, pc } => match (pc, sc.family) {
                (OwnerPc::Ready, Family::SimPhase) => {
                    // Stutter: Contended pop (empty deque, lock held)
                    // would re-schedule without effect.
                    !(matches!(sc.owner[*next], OwnerOp::Pop)
                        && self.bottom() == self.top()
                        && self.lock() != 0)
                }
                (OwnerPc::Ready, Family::NativeOp) => {
                    // Only reachable under a seeded mutation: a correct
                    // run never lets the owner start a push while
                    // `top > bottom` (a mutated double claim can leave
                    // the indices crossed for good). Real code would
                    // trip the capacity assertion; model it as blocked
                    // so such runs surface as `Stuck` instead of
                    // panicking the explorer.
                    !(matches!(sc.owner[*next], OwnerOp::Push(_)) && self.top() > self.bottom())
                }
                (OwnerPc::PopLock { .. }, _) => self.lock() == 0,
                _ => true,
            },
            ThreadState::Thief { .. } => true,
        }
    }

    /// The load whose reads-from choice thread `ti`'s next step branches
    /// on, if any. Owner reads of owner-written words (`bottom`, slots)
    /// always have exactly one readable message (the thread's own floor
    /// is the latest store), so they are not listed.
    fn pending_load(&self, ti: usize, sc: &Scenario) -> Option<(usize, MemOrd)> {
        if sc.family != Family::NativeOp {
            return None;
        }
        let o = sc.ords();
        match &self.threads[ti] {
            ThreadState::Owner { next, pc } => match pc {
                OwnerPc::Ready if *next < sc.owner.len() => Some(match sc.owner[*next] {
                    OwnerOp::Push(_) => (IDX_TOP, o.push_read_top),
                    OwnerOp::Pop => (IDX_TOP, o.pop_read_top0),
                }),
                OwnerPc::PopRecheck { .. } if sc.mutation != Mutation::SkipOwnerTopRecheck => {
                    Some((IDX_TOP, o.pop_reread_top))
                }
                OwnerPc::PopLocked { .. } => Some((IDX_TOP, o.pop_locked_top)),
                _ => None,
            },
            ThreadState::Thief { pc, .. } => match pc {
                ThiefPc::Idle => Some((IDX_TOP, o.pre_top)),
                ThiefPc::NatPre { .. } => Some((IDX_BOTTOM, o.pre_bottom)),
                ThiefPc::NatL1 => Some((IDX_TOP, o.locked_top)),
                ThiefPc::NatL2 { .. } => Some((IDX_BOTTOM, o.locked_bottom)),
                ThiefPc::NatReadSlot { t, i, .. } => {
                    Some((idx_slot(self.slot_of(t + i)), o.slot_read))
                }
                _ => None,
            },
        }
    }

    /// Number of distinct next steps for thread `ti`: the reads-from
    /// choices of its pending load (1 under SC or for stores/RMWs). The
    /// explorer branches over `0..choices`.
    pub fn choices(&self, ti: usize, sc: &Scenario) -> u32 {
        match self.pending_load(ti, sc) {
            Some((loc, ord)) => self.mem.load_choices(ti, loc, ord),
            None => 1,
        }
    }

    /// Execute thread `ti`'s next step with reads-from `choice` (must be
    /// `< choices(ti, sc)`). Panics on model-internal impossibilities
    /// (overflow under a well-sized scenario).
    pub fn step(&mut self, ti: usize, choice: u32, sc: &Scenario) -> StepOut {
        debug_assert!(self.enabled(ti, sc));
        debug_assert!(choice < self.choices(ti, sc));
        match self.threads[ti].clone() {
            ThreadState::Owner { next, pc } => self.owner_step(ti, next, pc, choice, sc),
            ThreadState::Thief { attempts_left, pc } => {
                self.thief_step(ti, attempts_left, pc, choice, sc)
            }
        }
    }

    fn keep(&mut self, v: u64) -> (Option<u64>, bool) {
        match self.consumed.binary_search(&v) {
            Ok(_) => (Some(v), true),
            Err(i) => {
                self.consumed.insert(i, v);
                (Some(v), false)
            }
        }
    }

    fn out(label: String, acc: Access, event: OpEvent) -> StepOut {
        StepOut {
            label,
            acc,
            kept: None,
            dup: false,
            event,
        }
    }

    /// Load from a word this thread is the only writer of: its floor is
    /// its own latest store, so there is exactly one readable message.
    fn own_load(&mut self, ti: usize, loc: usize, ord: MemOrd) -> u64 {
        debug_assert_eq!(self.mem.load_choices(ti, loc, ord), 1);
        self.mem.load(ti, loc, ord, 0).val
    }

    fn owner_step(
        &mut self,
        ti: usize,
        next: usize,
        pc: OwnerPc,
        choice: u32,
        sc: &Scenario,
    ) -> StepOut {
        let set = |s: &mut Sys, next, pc| s.threads[ti] = ThreadState::Owner { next, pc };
        let ords = sc.ords();
        let clean = OrdSpec::native();
        match (pc, sc.family) {
            (OwnerPc::Ready, Family::SimPhase) => match sc.owner[next] {
                OwnerOp::Push(v) => {
                    let (b, t) = (self.bottom(), self.top());
                    assert!(b - t < sc.capacity, "owner push overflow");
                    let slot = self.slot_of(b);
                    self.mem.store(ti, idx_slot(slot), MemOrd::Relaxed, v);
                    self.mem.store(ti, IDX_BOTTOM, MemOrd::Relaxed, b + 1);
                    set(self, next + 1, OwnerPc::Ready);
                    Self::out(
                        format!("owner: push v{v} at pos {b} (slot {slot})"),
                        Access::rw(LOC_TOP | LOC_BOTTOM, LOC_BOTTOM | loc_slot(slot)),
                        OpEvent::PushDone(v),
                    )
                }
                OwnerOp::Pop => {
                    // Mirrors SimDeque::pop at event atomicity. The
                    // enabledness check already excluded Contended.
                    let (b, t) = (self.bottom(), self.top());
                    if b == t {
                        assert_eq!(self.lock(), 0);
                        set(self, next + 1, OwnerPc::Ready);
                        return Self::out(
                            "owner: pop -> empty".to_string(),
                            Access::r(LOC_TOP | LOC_BOTTOM | LOC_LOCK),
                            OpEvent::PopDone(None),
                        );
                    }
                    let nb = b - 1;
                    let conflict = t > nb && sc.mutation != Mutation::SkipOwnerTopRecheck;
                    assert!(
                        !conflict,
                        "SimDeque pop conflict path is unreachable at event atomicity \
                         (top cannot move inside an atomic pop)"
                    );
                    self.mem.store(ti, IDX_BOTTOM, MemOrd::Relaxed, nb);
                    let slot = self.slot_of(nb);
                    let v = self.mem.latest(idx_slot(slot));
                    let (kept, dup) = self.keep(v);
                    set(self, next + 1, OwnerPc::Ready);
                    StepOut {
                        label: format!("owner: pop -> keeps v{v} from pos {nb}"),
                        acc: Access::rw(
                            LOC_TOP | LOC_BOTTOM | LOC_LOCK | loc_slot(slot),
                            LOC_BOTTOM,
                        ),
                        kept,
                        dup,
                        event: OpEvent::PopDone(Some(v)),
                    }
                }
            },
            (OwnerPc::Ready, Family::NativeOp) => match sc.owner[next] {
                OwnerOp::Push(_) => {
                    // Read indices + capacity check. `bottom` is
                    // owner-owned, so folding its read in costs nothing.
                    // `t <= b` here is a protocol theorem the checker
                    // itself establishes (the enabledness guard blocks
                    // the mutated counterexamples that break it; a stale
                    // top read is older, hence smaller, and preserves it).
                    let b = self.own_load(ti, IDX_BOTTOM, MemOrd::Relaxed);
                    let l = self.mem.load(ti, IDX_TOP, ords.push_read_top, choice);
                    let t = l.val;
                    assert!(t <= b && b - t < sc.capacity, "owner push overflow");
                    set(self, next, OwnerPc::PushIdx { b });
                    Self::out(
                        format!(
                            "owner: push reads top={t}, bottom={b} (capacity ok){}",
                            stale_tag(l, "top", self.top())
                        ),
                        Access::r(LOC_TOP | LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
                OwnerOp::Pop => {
                    let b = self.own_load(ti, IDX_BOTTOM, MemOrd::Relaxed);
                    let l = self.mem.load(ti, IDX_TOP, ords.pop_read_top0, choice);
                    let t = l.val;
                    let tag = stale_tag(l, "top", self.top());
                    if t >= b {
                        set(self, next + 1, OwnerPc::Ready);
                        return Self::out(
                            format!("owner: pop reads top={t} >= bottom={b} -> empty{tag}"),
                            Access::r(LOC_TOP | LOC_BOTTOM),
                            OpEvent::PopDone(None),
                        );
                    }
                    set(self, next, OwnerPc::PopDec { b });
                    Self::out(
                        format!("owner: pop reads top={t}, bottom={b}{tag}"),
                        Access::r(LOC_TOP | LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
            },
            (OwnerPc::PushIdx { b }, _) => {
                let OwnerOp::Push(v) = sc.owner[next] else {
                    unreachable!()
                };
                let slot = self.slot_of(b);
                self.mem.store(ti, idx_slot(slot), ords.push_write_slot, v);
                set(self, next, OwnerPc::PushWrote { b });
                Self::out(
                    format!("owner: push writes v{v} to slot {slot}"),
                    Access::rw(0, loc_slot(slot)),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PushWrote { b }, _) => {
                let OwnerOp::Push(v) = sc.owner[next] else {
                    unreachable!()
                };
                self.mem.store(ti, IDX_BOTTOM, ords.push_publish, b + 1);
                set(self, next + 1, OwnerPc::Ready);
                Self::out(
                    format!(
                        "owner: push publishes bottom={} ({}){}",
                        b + 1,
                        ords.push_publish.name(),
                        ord_tag(ords.push_publish, clean.push_publish)
                    ),
                    Access::rw(0, LOC_BOTTOM),
                    OpEvent::PushDone(v),
                )
            }
            (OwnerPc::PopDec { b }, _) => {
                self.mem.store(ti, IDX_BOTTOM, ords.pop_dec_bottom, b - 1);
                set(self, next, OwnerPc::PopRecheck { b });
                Self::out(
                    format!(
                        "owner: pop stores bottom={} ({}){}",
                        b - 1,
                        ords.pop_dec_bottom.name(),
                        ord_tag(ords.pop_dec_bottom, clean.pop_dec_bottom)
                    ),
                    Access::rw(0, LOC_BOTTOM),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PopRecheck { b }, _) => {
                let nb = b - 1;
                if sc.mutation == Mutation::SkipOwnerTopRecheck {
                    // Mutation: the fast path no longer consults `top`.
                    let slot = self.slot_of(nb);
                    let v = self.own_load(ti, idx_slot(slot), ords.slot_read);
                    let (kept, dup) = self.keep(v);
                    set(self, next + 1, OwnerPc::Ready);
                    return StepOut {
                        label: format!(
                            "owner: pop [MUTATED: no top re-check] keeps v{v} from pos {nb}"
                        ),
                        acc: Access::r(loc_slot(slot)),
                        kept,
                        dup,
                        event: OpEvent::PopDone(Some(v)),
                    };
                }
                let l = self.mem.load(ti, IDX_TOP, ords.pop_reread_top, choice);
                let t = l.val;
                let tag = stale_tag(l, "top", self.top());
                // The sound bound leaves the whole thief target range
                // `[t, t + batch)` alone: position nb is taken lock-free
                // only when it provably is no thief's target. The shipped
                // k = 1 protocol is the strict `t < nb`.
                // `LastEntryFastPath` restores the original `t <= nb`,
                // which also takes the last entry while a locked thief
                // may already be committed to it; `BatchNarrowOwnerBound`
                // keeps the k = 1 bound under batching.
                let sound = t + sc.batch <= nb;
                let fast = match sc.mutation {
                    Mutation::LastEntryFastPath => t <= nb,
                    Mutation::BatchNarrowOwnerBound => t < nb,
                    _ => sound,
                };
                if fast {
                    let slot = self.slot_of(nb);
                    let v = self.own_load(ti, idx_slot(slot), ords.slot_read);
                    let (kept, dup) = self.keep(v);
                    let mutated = if !sound {
                        match sc.mutation {
                            Mutation::LastEntryFastPath => " [MUTATED: lock-free last entry]",
                            Mutation::BatchNarrowOwnerBound => {
                                " [MUTATED: k=1 owner bound under batching]"
                            }
                            _ => unreachable!("fast beyond the sound bound needs a mutation"),
                        }
                    } else {
                        ""
                    };
                    set(self, next + 1, OwnerPc::Ready);
                    StepOut {
                        label: format!(
                            "owner: pop re-reads top={t} -> keeps v{v} lock-free{tag}{mutated}"
                        ),
                        acc: Access::r(LOC_TOP | loc_slot(slot)),
                        kept,
                        dup,
                        event: OpEvent::PopDone(Some(v)),
                    }
                } else {
                    set(self, next, OwnerPc::PopRestore { b });
                    Self::out(
                        format!("owner: pop re-reads top={t} -> lock arbitration{tag}"),
                        Access::r(LOC_TOP),
                        OpEvent::Micro,
                    )
                }
            }
            (OwnerPc::PopRestore { b }, _) => {
                self.mem.store(ti, IDX_BOTTOM, ords.pop_restore_bottom, b);
                set(self, next, OwnerPc::PopLock { b });
                Self::out(
                    format!("owner: pop restores bottom={b}"),
                    Access::rw(0, LOC_BOTTOM),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PopLock { b }, _) => {
                let (old, ok) = self.mem.cas(ti, IDX_LOCK, 0, 1, ords.lock_cas);
                assert!(
                    ok && old == 0,
                    "PopLock is enabled only while the lock is free"
                );
                set(self, next, OwnerPc::PopLocked { b });
                Self::out(
                    format!(
                        "owner: pop TAS acquires lock ({}){}",
                        ords.lock_cas.name(),
                        ord_tag(ords.lock_cas, clean.lock_cas)
                    ),
                    Access::rw(LOC_LOCK, LOC_LOCK),
                    OpEvent::Micro,
                )
            }
            (OwnerPc::PopLocked { b }, _) => {
                let l = self.mem.load(ti, IDX_TOP, ords.pop_locked_top, choice);
                let t = l.val;
                let tag = stale_tag(l, "top", self.top());
                if t >= b {
                    set(self, next, OwnerPc::PopUnlock { took: false });
                    Self::out(
                        format!("owner: pop locked re-read top={t} >= {b} -> thief won{tag}"),
                        Access::r(LOC_TOP),
                        OpEvent::Micro,
                    )
                } else {
                    set(self, next, OwnerPc::PopTake { b });
                    Self::out(
                        format!("owner: pop locked re-read top={t} < {b} -> take{tag}"),
                        Access::r(LOC_TOP),
                        OpEvent::Micro,
                    )
                }
            }
            (OwnerPc::PopTake { b }, _) => {
                self.mem.store(ti, IDX_BOTTOM, ords.pop_take_bottom, b - 1);
                let slot = self.slot_of(b - 1);
                let v = self.own_load(ti, idx_slot(slot), ords.slot_read);
                let (kept, dup) = self.keep(v);
                set(self, next, OwnerPc::PopUnlock { took: true });
                StepOut {
                    label: format!("owner: pop keeps v{v} under lock"),
                    acc: Access::rw(loc_slot(slot), LOC_BOTTOM),
                    kept,
                    dup,
                    event: OpEvent::PopDone(Some(v)),
                }
            }
            (OwnerPc::PopUnlock { took }, _) => {
                self.mem.store(ti, IDX_LOCK, ords.unlock, 0);
                set(self, next + 1, OwnerPc::Ready);
                let event = if took {
                    OpEvent::Micro
                } else {
                    OpEvent::PopDone(None)
                };
                Self::out(
                    format!(
                        "owner: pop releases lock ({}){}",
                        ords.unlock.name(),
                        ord_tag(ords.unlock, clean.unlock)
                    ),
                    Access::rw(0, LOC_LOCK),
                    event,
                )
            }
        }
    }

    fn thief_step(
        &mut self,
        ti: usize,
        attempts: u32,
        pc: ThiefPc,
        choice: u32,
        sc: &Scenario,
    ) -> StepOut {
        let name = format!("thief {ti}");
        let set = |s: &mut Sys, attempts_left, pc| {
            s.threads[ti] = ThreadState::Thief { attempts_left, pc };
        };
        let ords = sc.ords();
        let clean = OrdSpec::native();
        match (pc, sc.family) {
            // ---- SimPhase: one step per RDMA phase --------------------
            (ThiefPc::Idle, Family::SimPhase) => {
                let (t, b) = (self.top(), self.bottom());
                let empty = t >= b;
                if empty {
                    set(self, attempts - 1, ThiefPc::Idle);
                } else {
                    set(self, attempts, ThiefPc::SimChecked);
                }
                Self::out(
                    format!(
                        "{name}: phase1 empty-check READ top={t}, bottom={b} -> {}",
                        if empty { "empty, abort" } else { "continue" }
                    ),
                    Access::r(LOC_TOP | LOC_BOTTOM),
                    OpEvent::EmptyCheck { empty },
                )
            }
            (ThiefPc::SimChecked, Family::SimPhase) => {
                let old = self.mem.faa(ti, IDX_LOCK, 1, MemOrd::Acquire);
                let acquired = old == 0;
                if acquired {
                    set(self, attempts, ThiefPc::SimLocked);
                } else {
                    set(self, attempts - 1, ThiefPc::Idle);
                }
                Self::out(
                    format!(
                        "{name}: phase2 FAA(lock,+1) old={old} -> {}",
                        if acquired { "acquired" } else { "busy, abort" }
                    ),
                    Access::rw(LOC_LOCK, LOC_LOCK),
                    OpEvent::LockTry { acquired },
                )
            }
            (ThiefPc::SimLocked, Family::SimPhase) => {
                let (t, b) = (self.top(), self.bottom());
                if t >= b {
                    if sc.mutation == Mutation::SkipUnlockOnRacedEmpty {
                        // Mutation: the thief forgets its unlock duty.
                        set(self, attempts - 1, ThiefPc::Idle);
                        return Self::out(
                            format!("{name}: phase3 raced empty [MUTATED: unlock dropped]"),
                            Access::r(LOC_TOP | LOC_BOTTOM),
                            OpEvent::StealPhase(None),
                        );
                    }
                    set(self, attempts, ThiefPc::SimUnlockPending { stole: false });
                    return Self::out(
                        format!("{name}: phase3 READ top={t} >= bottom={b} -> raced empty"),
                        Access::r(LOC_TOP | LOC_BOTTOM),
                        OpEvent::StealPhase(None),
                    );
                }
                let slot = self.slot_of(t);
                let v = self.mem.latest(idx_slot(slot));
                self.mem.store(ti, IDX_TOP, MemOrd::Relaxed, t + 1);
                let (kept, dup) = self.keep(v);
                set(self, attempts, ThiefPc::SimUnlockPending { stole: true });
                StepOut {
                    label: format!(
                        "{name}: phase3 READ entry v{v} at pos {t}, WRITE top={}",
                        t + 1
                    ),
                    acc: Access::rw(LOC_TOP | LOC_BOTTOM | loc_slot(slot), LOC_TOP),
                    kept,
                    dup,
                    event: OpEvent::StealPhase(Some(v)),
                }
            }
            (ThiefPc::SimUnlockPending { .. }, Family::SimPhase) => {
                self.mem.store(ti, IDX_LOCK, MemOrd::Relaxed, 0);
                set(self, attempts - 1, ThiefPc::Idle);
                Self::out(
                    format!("{name}: phase4 WRITE lock=0"),
                    Access::rw(0, LOC_LOCK),
                    OpEvent::Unlock,
                )
            }
            // ---- NativeOp: one step per atomic access -----------------
            (ThiefPc::Idle, Family::NativeOp) => {
                let l = self.mem.load(ti, IDX_TOP, ords.pre_top, choice);
                let t = l.val;
                let tag = stale_tag(l, "top", self.top());
                set(self, attempts, ThiefPc::NatPre { t });
                Self::out(
                    format!("{name}: pre-check loads top={t}{tag}"),
                    Access::r(LOC_TOP),
                    OpEvent::Micro,
                )
            }
            (ThiefPc::NatPre { t }, _) => {
                let l = self.mem.load(ti, IDX_BOTTOM, ords.pre_bottom, choice);
                let b = l.val;
                let tag = stale_tag(l, "bottom", self.bottom());
                if t >= b {
                    set(self, attempts - 1, ThiefPc::Idle);
                    Self::out(
                        format!("{name}: pre-check loads bottom={b} <= top -> abort{tag}"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::StealPhase(None),
                    )
                } else {
                    set(self, attempts, ThiefPc::NatCas);
                    Self::out(
                        format!("{name}: pre-check loads bottom={b} -> continue{tag}"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
            }
            (ThiefPc::NatCas, _) => {
                let (_, ok) = self.mem.cas(ti, IDX_LOCK, 0, 1, ords.lock_cas);
                if ok {
                    set(self, attempts, ThiefPc::NatL1);
                    Self::out(
                        format!(
                            "{name}: CAS(lock 0->1) acquired ({}){}",
                            ords.lock_cas.name(),
                            ord_tag(ords.lock_cas, clean.lock_cas)
                        ),
                        Access::rw(LOC_LOCK, LOC_LOCK),
                        OpEvent::LockTry { acquired: true },
                    )
                } else {
                    set(self, attempts - 1, ThiefPc::Idle);
                    Self::out(
                        format!("{name}: CAS(lock) failed -> abort"),
                        Access::rw(LOC_LOCK, 0),
                        OpEvent::LockTry { acquired: false },
                    )
                }
            }
            (ThiefPc::NatL1, _) => {
                let l = self.mem.load(ti, IDX_TOP, ords.locked_top, choice);
                let t = l.val;
                let tag = stale_tag(l, "top", self.top());
                set(self, attempts, ThiefPc::NatL2 { t });
                Self::out(
                    format!("{name}: locked load top={t}{tag}"),
                    Access::r(LOC_TOP),
                    OpEvent::Micro,
                )
            }
            (ThiefPc::NatL2 { t }, _) => {
                let l = self.mem.load(ti, IDX_BOTTOM, ords.locked_bottom, choice);
                let b = l.val;
                let tag = format!(
                    "{}{}",
                    stale_tag(l, "bottom", self.bottom()),
                    ord_tag(ords.locked_bottom, clean.locked_bottom)
                );
                if t >= b {
                    if sc.mutation == Mutation::SkipUnlockOnRacedEmpty {
                        set(self, attempts - 1, ThiefPc::Idle);
                        return Self::out(
                            format!("{name}: locked empty [MUTATED: unlock dropped]"),
                            Access::r(LOC_BOTTOM),
                            OpEvent::StealPhase(None),
                        );
                    }
                    set(self, attempts, ThiefPc::NatUnlock { stole: false });
                    Self::out(
                        format!("{name}: locked load bottom={b} <= top={t} -> empty{tag}"),
                        Access::r(LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                } else {
                    let k = sc.batch.min(b - t);
                    set(self, attempts, ThiefPc::NatReadSlot { t, k, i: 0 });
                    let batched = if sc.batch > 1 {
                        format!(" (batch k={k})")
                    } else {
                        String::new()
                    };
                    Self::out(
                        format!("{name}: locked load bottom={b} -> entries at pos {t}..{}{batched}{tag}", t + k),
                        Access::r(LOC_BOTTOM),
                        OpEvent::Micro,
                    )
                }
            }
            (ThiefPc::NatReadSlot { t, k, i }, _) => {
                let pos = t + i;
                let slot = self.slot_of(pos);
                // The value is kept at the read: the lock pins `top`,
                // and the owner's fast-path bound leaves positions
                // `[t, t + batch)` alone (the checker verifies that
                // claim via the double-claim invariant).
                let l = self.mem.load(ti, idx_slot(slot), ords.slot_read, choice);
                let v = l.val;
                let tag = stale_tag(l, "slot", self.slot(slot as usize));
                let (kept, dup) = self.keep(v);
                let next_pc = if i + 1 < k {
                    ThiefPc::NatReadSlot { t, k, i: i + 1 }
                } else {
                    ThiefPc::NatClaim { t, k }
                };
                set(self, attempts, next_pc);
                StepOut {
                    label: format!(
                        "{name}: locked read slot {slot} (pos {pos}) -> keeps v{v}{tag}"
                    ),
                    acc: Access::r(loc_slot(slot)),
                    kept,
                    dup,
                    event: OpEvent::Micro,
                }
            }
            (ThiefPc::NatClaim { t, k }, _) => {
                self.mem.store(ti, IDX_TOP, ords.claim_top, t + k);
                set(self, attempts, ThiefPc::NatUnlock { stole: true });
                Self::out(
                    format!(
                        "{name}: publishes claim top={} ({}){}",
                        t + k,
                        ords.claim_top.name(),
                        ord_tag(ords.claim_top, clean.claim_top)
                    ),
                    Access::rw(0, LOC_TOP),
                    OpEvent::Micro,
                )
            }
            (ThiefPc::NatUnlock { stole }, _) => {
                self.mem.store(ti, IDX_LOCK, ords.unlock, 0);
                set(self, attempts - 1, ThiefPc::Idle);
                Self::out(
                    format!(
                        "{name}: releases lock (attempt {}, {}){}",
                        if stole { "stole" } else { "failed" },
                        ords.unlock.name(),
                        ord_tag(ords.unlock, clean.unlock)
                    ),
                    Access::rw(0, LOC_LOCK),
                    OpEvent::Unlock,
                )
            }
            (pc, fam) => unreachable!("thief pc {pc:?} invalid in family {fam:?}"),
        }
    }
}
