//! DFS exploration of a [`Scenario`]'s interleaving space.
//!
//! Two strategies share the same step semantics and invariant checks:
//!
//! - [`Explorer::run_exhaustive`] — DFS memoized on the full system
//!   state. The reachable state graph is finite and acyclic (every step
//!   advances some thread's pc, and pcs are monotone within an op), so
//!   memoization visits **every reachable state and transition exactly
//!   once** while the number of *distinct interleavings* (root-to-leaf
//!   paths) is counted exactly by dynamic programming — no path
//!   enumeration needed. This is the verification mode: per-state and
//!   per-transition invariants get full coverage.
//! - [`Explorer::run_sleep_sets`] — stateless DFS with sleep sets
//!   (Godefroid) over the read/write footprints in [`Access`], plus the
//!   stutter pruning built into [`Sys::enabled`] (spin/retry steps are
//!   disabled until they can make progress). This mode walks concrete
//!   complete executions, which is what the differential replay consumes;
//!   the test suite cross-checks that it reaches exactly the same set of
//!   quiescent states as the exhaustive mode.
//!
//! Invariants checked on every reachable state/transition:
//!
//! 1. **No double claim** — a value is kept at most once (owner pop and
//!    thief steal never both win an entry; two thieves never both win).
//! 2. **Slack bound** — `top <= bottom + 1` (the transient `bottom =
//!    top - 1` dip inside a pop is the only allowed overshoot).
//! 3. **Capacity bound** — `bottom - top <= capacity`.
//! 4. **Lock discipline** — at quiescence the lock word is 0; a wedged
//!    system (some thread not done, none enabled) is reported as stuck,
//!    which is how a leaked lock manifests mid-run.
//! 5. **Conservation** — at quiescence every pushed value was either
//!    kept exactly once or still sits in `[top, bottom)`.

use crate::memory::MemModel;
use crate::model::{Access, OwnerOp, Scenario, StepOut, Sys};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// A violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A value was kept twice (pop/steal or steal/steal double claim).
    DoubleClaim {
        /// The twice-claimed value.
        value: u64,
    },
    /// A consumer kept a value that was never pushed in the explored
    /// window — a stale slot read that escaped (possible only when a
    /// publication edge is broken, e.g. the `push-publish-weak`
    /// mutation).
    PhantomValue {
        /// The never-pushed value that was kept.
        value: u64,
    },
    /// A pushed value was neither kept nor left in the deque.
    LostValue {
        /// The missing value.
        value: u64,
    },
    /// All threads finished but the lock word is nonzero.
    LockLeak {
        /// Final lock word.
        lock: u64,
    },
    /// `top > bottom + 1`.
    SlackExceeded {
        /// Observed top.
        top: u64,
        /// Observed bottom.
        bottom: u64,
    },
    /// `bottom - top > capacity`.
    OverCapacity {
        /// Observed live count.
        live: u64,
        /// Scenario capacity.
        capacity: u64,
    },
    /// Some thread still has work but no thread can step (e.g. the owner
    /// spinning on a lock nobody will ever release).
    Stuck,
}

impl ViolationKind {
    /// One-line description.
    pub fn describe(&self) -> String {
        match self {
            ViolationKind::DoubleClaim { value } => {
                format!("double claim: value v{value} was kept by two consumers")
            }
            ViolationKind::PhantomValue { value } => {
                format!(
                    "phantom task: a consumer kept v{value}, which was never pushed \
                     (stale slot read)"
                )
            }
            ViolationKind::LostValue { value } => {
                format!("lost task: value v{value} was pushed but never delivered")
            }
            ViolationKind::LockLeak { lock } => {
                format!("lock leak: all threads done but lock word = {lock}")
            }
            ViolationKind::SlackExceeded { top, bottom } => {
                format!("index slack violated: top={top}, bottom={bottom} exceed the family's transient bound")
            }
            ViolationKind::OverCapacity { live, capacity } => {
                format!("capacity violated: {live} live entries in a {capacity}-slot deque")
            }
            ViolationKind::Stuck => {
                "stuck: unfinished threads but no enabled step (wedged on the lock)".to_string()
            }
        }
    }
}

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Thread index (0 = owner).
    pub thread: usize,
    /// What the step did.
    pub label: String,
    /// Shared words after the step.
    pub lock: u64,
    /// Top after the step.
    pub top: u64,
    /// Bottom after the step.
    pub bottom: u64,
}

/// A counterexample: the violated invariant plus the exact interleaving
/// that reached it from the initial state.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// The interleaving, oldest step first.
    pub trace: Vec<StepRecord>,
}

impl Violation {
    /// Render the counterexample as a numbered human-readable
    /// interleaving.
    pub fn render(&self, scenario: &str) -> String {
        let mut s = format!(
            "counterexample in scenario `{scenario}`\n  VIOLATION: {}\n  interleaving ({} steps):\n",
            self.kind.describe(),
            self.trace.len()
        );
        for (i, r) in self.trace.iter().enumerate() {
            s.push_str(&format!(
                "    {:>3}. {:<58} [lock={} top={} bottom={}]\n",
                i + 1,
                r.label,
                r.lock,
                r.top,
                r.bottom
            ));
        }
        s
    }
}

/// Exploration statistics and outcome for one scenario.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Distinct reachable states (exhaustive mode).
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Distinct complete interleavings. Exact path count via DP in
    /// exhaustive mode; number of executions actually walked in
    /// sleep-set mode.
    pub interleavings: u128,
    /// Prefixes cut by sleep-set pruning (sleep-set mode only).
    pub sleep_pruned: u64,
    /// Longest interleaving seen.
    pub max_depth: usize,
    /// Hashes of the distinct quiescent states reached.
    pub final_states: HashSet<u64>,
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
    /// Complete schedules (thread-choice sequences) collected for
    /// differential replay (sleep-set mode, capped).
    pub schedules: Vec<Vec<usize>>,
}

/// DFS driver over one scenario.
pub struct Explorer<'a> {
    sc: &'a Scenario,
    report: Report,
    path: Vec<StepRecord>,
    sched: Vec<usize>,
    schedule_cap: usize,
    memo: HashMap<Sys, u128>,
    /// Values the owner script pushes (phantom detection: anything else
    /// a consumer keeps is a stale slot read that escaped).
    pushed: Vec<u64>,
}

fn hash_sys(sys: &Sys) -> u64 {
    let mut h = DefaultHasher::new();
    sys.hash(&mut h);
    h.finish()
}

impl<'a> Explorer<'a> {
    /// A fresh explorer for `sc`. `schedule_cap` bounds how many complete
    /// schedules the sleep-set mode records for replay (0 = none).
    pub fn new(sc: &'a Scenario, schedule_cap: usize) -> Self {
        let mut pushed: Vec<u64> = sc
            .owner
            .iter()
            .filter_map(|op| match op {
                OwnerOp::Push(v) => Some(*v),
                OwnerOp::Pop => None,
            })
            .collect();
        pushed.sort_unstable();
        Explorer {
            sc,
            report: Report {
                scenario: sc.name.to_string(),
                ..Report::default()
            },
            path: Vec::new(),
            sched: Vec::new(),
            schedule_cap,
            memo: HashMap::new(),
            pushed,
        }
    }

    /// Exhaustive memoized DFS (see module docs). Returns the report.
    pub fn run_exhaustive(mut self) -> Report {
        let init = Sys::initial(self.sc);
        let n = self.dfs_exhaustive(&init);
        if self.report.violation.is_none() {
            self.report.interleavings = n;
        }
        self.report
    }

    /// Stateless DFS with sleep sets. Returns the report.
    pub fn run_sleep_sets(mut self) -> Report {
        assert_eq!(
            self.sc.mem_model,
            MemModel::Sc,
            "sleep sets assume choice-free steps; RA scenarios are \
             explored exhaustively"
        );
        let init = Sys::initial(self.sc);
        self.dfs_sleep(&init, &[]);
        self.report
    }

    fn violate(&mut self, kind: ViolationKind) {
        if self.report.violation.is_none() {
            self.report.violation = Some(Violation {
                kind,
                trace: self.path.clone(),
            });
        }
    }

    /// Per-transition checks, run after every executed step.
    fn check_step(&mut self, sys: &Sys, out: &StepOut) {
        if let Some(v) = out.kept {
            if out.dup {
                self.violate(ViolationKind::DoubleClaim { value: v });
            } else if self.pushed.binary_search(&v).is_err() {
                self.violate(ViolationKind::PhantomValue { value: v });
            }
        }
        // Tight per-family slack bounds, proved by the exploration
        // itself: at phase atomicity indices never cross (`top <=
        // bottom`); at per-access granularity a thief's claim published
        // against a pre-dip `bottom` can overlap the victim's
        // speculative bottom dip (-1, always restored), so `top <=
        // bottom + 1` transiently and anything beyond is a bug.
        let slack = match self.sc.family {
            crate::model::Family::SimPhase => 0,
            crate::model::Family::NativeOp => 1,
        };
        if sys.top() > sys.bottom() + slack {
            self.violate(ViolationKind::SlackExceeded {
                top: sys.top(),
                bottom: sys.bottom(),
            });
        }
        if sys.bottom() > sys.top() && sys.bottom() - sys.top() > self.sc.capacity {
            self.violate(ViolationKind::OverCapacity {
                live: sys.bottom() - sys.top(),
                capacity: self.sc.capacity,
            });
        }
    }

    /// Quiescence checks, run when every thread is done.
    fn check_quiescent(&mut self, sys: &Sys) {
        if sys.lock() != 0 {
            self.violate(ViolationKind::LockLeak { lock: sys.lock() });
        }
        // Transient overshoot must be rolled back by quiescence.
        if sys.top() > sys.bottom() {
            self.violate(ViolationKind::SlackExceeded {
                top: sys.top(),
                bottom: sys.bottom(),
            });
        }
        let mut remaining: Vec<u64> = (sys.top()..sys.bottom())
            .map(|p| sys.slot((p % sys.capacity()) as usize))
            .collect();
        remaining.sort_unstable();
        for &v in &self.pushed.clone() {
            let delivered = sys.consumed.binary_search(&v).is_ok();
            let in_deque = remaining.binary_search(&v).is_ok();
            if !delivered && !in_deque {
                self.violate(ViolationKind::LostValue { value: v });
            }
        }
        self.report.final_states.insert(hash_sys(sys));
        self.report.max_depth = self.report.max_depth.max(self.path.len());
    }

    fn enabled_threads(&self, sys: &Sys) -> Vec<usize> {
        (0..sys.threads.len())
            .filter(|&t| sys.enabled(t, self.sc))
            .collect()
    }

    fn all_done(&self, sys: &Sys) -> bool {
        (0..sys.threads.len()).all(|t| sys.done(t, self.sc))
    }

    fn dfs_exhaustive(&mut self, sys: &Sys) -> u128 {
        if self.report.violation.is_some() {
            return 0;
        }
        if let Some(&n) = self.memo.get(sys) {
            return n;
        }
        self.report.states += 1;
        let enabled = self.enabled_threads(sys);
        let count = if enabled.is_empty() {
            if self.all_done(sys) {
                self.check_quiescent(sys);
            } else {
                self.violate(ViolationKind::Stuck);
            }
            1u128
        } else {
            let mut n = 0u128;
            'threads: for t in enabled {
                // Under RA a load branches over every message its
                // ordering permits; under SC every step has one choice.
                for c in 0..sys.choices(t, self.sc) {
                    if self.report.violation.is_some() {
                        break 'threads;
                    }
                    let mut next = sys.clone();
                    let out = next.step(t, c, self.sc);
                    self.report.transitions += 1;
                    self.path.push(StepRecord {
                        thread: t,
                        label: out.label.clone(),
                        lock: next.lock(),
                        top: next.top(),
                        bottom: next.bottom(),
                    });
                    self.check_step(&next, &out);
                    if self.report.violation.is_none() {
                        n += self.dfs_exhaustive(&next);
                    }
                    self.path.pop();
                }
            }
            n
        };
        if self.report.violation.is_none() {
            self.memo.insert(sys.clone(), count);
        }
        count
    }

    fn dfs_sleep(&mut self, sys: &Sys, sleep: &[(usize, Access)]) {
        if self.report.violation.is_some() {
            return;
        }
        let enabled = self.enabled_threads(sys);
        if enabled.is_empty() {
            if self.all_done(sys) {
                self.report.interleavings += 1;
                self.check_quiescent(sys);
                if self.report.schedules.len() < self.schedule_cap {
                    self.report.schedules.push(self.sched.clone());
                }
            } else {
                self.violate(ViolationKind::Stuck);
            }
            return;
        }
        let explore: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|t| !sleep.iter().any(|(u, _)| u == t))
            .collect();
        if explore.is_empty() {
            // Every enabled step is asleep: all continuations from here
            // are commutations of interleavings explored elsewhere.
            self.report.sleep_pruned += 1;
            return;
        }
        let mut done_here: Vec<(usize, Access)> = Vec::new();
        for t in explore {
            if self.report.violation.is_some() {
                break;
            }
            let mut next = sys.clone();
            let out = next.step(t, 0, self.sc);
            self.report.transitions += 1;
            self.path.push(StepRecord {
                thread: t,
                label: out.label.clone(),
                lock: next.lock(),
                top: next.top(),
                bottom: next.bottom(),
            });
            self.sched.push(t);
            self.check_step(&next, &out);
            if self.report.violation.is_none() {
                // A sleeping thread stays asleep only across steps that
                // are independent of it; its own footprint is unchanged
                // by such steps, so the recorded Access stays valid.
                let new_sleep: Vec<(usize, Access)> = sleep
                    .iter()
                    .chain(done_here.iter())
                    .filter(|(u, acc)| *u != t && acc.independent(out.acc))
                    .cloned()
                    .collect();
                self.dfs_sleep(&next, &new_sleep);
            }
            self.path.pop();
            self.sched.pop();
            done_here.push((t, out.acc));
        }
    }
}
