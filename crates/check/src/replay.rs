//! Differential replay: drive the real `SimDeque` over a real `Fabric`
//! with schedules the explorer proved reachable, in lockstep with the
//! model, and fail on any divergence in outcome or final shared state.
//!
//! This closes the model-fidelity gap: the [`crate::model`] machines
//! claim to mirror `SimDeque`'s phase semantics; replay makes the
//! simulator itself vouch for that claim on every explored interleaving
//! (up to the schedule cap). Only [`Family::SimPhase`] scenarios replay —
//! a schedule at phase atomicity maps 1:1 onto real `SimDeque` calls.

use crate::model::{Family, OpEvent, OwnerOp, Scenario, Sys};
use uat_base::{CostModel, Cycles, Topology, WorkerId};
use uat_deque::{PopOutcome, SimDeque, StealOutcome, TaskqEntry};
use uat_rdma::Fabric;

const BASE: u64 = 0x10_000;
const OWNER: WorkerId = WorkerId(0);

fn entry_for(v: u64) -> TaskqEntry {
    TaskqEntry {
        task: v,
        ctx: v,
        frame_base: 0x9_0000 + v * 64,
        frame_size: 64,
    }
}

/// Replay `schedules` against a fresh fabric-resident deque each, in
/// lockstep with the model. Returns the number of schedules replayed, or
/// a description of the first divergence.
pub fn replay_schedules(sc: &Scenario, schedules: &[Vec<usize>]) -> Result<u64, String> {
    assert_eq!(
        sc.family,
        Family::SimPhase,
        "only phase-granularity schedules map onto SimDeque calls"
    );
    for (si, sched) in schedules.iter().enumerate() {
        replay_one(sc, sched).map_err(|e| format!("schedule {si}: {e}"))?;
    }
    Ok(schedules.len() as u64)
}

fn replay_one(sc: &Scenario, sched: &[usize]) -> Result<(), String> {
    let workers = 1 + sc.thieves.len();
    let mut fabric = Fabric::new(Topology::new(workers as u32, 1), CostModel::fx10());
    fabric
        .register(OWNER, BASE, SimDeque::footprint(sc.capacity) as usize)
        .map_err(|e| format!("register: {e:?}"))?;
    let deque = SimDeque::init(&mut fabric, OWNER, BASE, sc.capacity)
        .map_err(|e| format!("init: {e:?}"))?;

    // Prologue: the model applied it serially; do the same for real.
    for &op in &sc.prologue {
        match op {
            OwnerOp::Push(v) => deque
                .push(&mut fabric, entry_for(v))
                .map_err(|e| format!("prologue push: {e:?}"))?,
            OwnerOp::Pop => {
                let r = deque
                    .pop(&mut fabric)
                    .map_err(|e| format!("prologue pop: {e:?}"))?;
                if !matches!(r, PopOutcome::Entry(_)) {
                    return Err(format!("prologue pop expected an entry, got {r:?}"));
                }
            }
        }
    }

    let mut sys = Sys::initial(sc);
    // Any monotone clock works: the fabric linearizes each one-sided op
    // at its issue instant, so widely spaced instants keep phases from
    // overlapping in the cost model without affecting semantics.
    let mut now = Cycles(0);
    for (i, &t) in sched.iter().enumerate() {
        if !sys.enabled(t, sc) {
            return Err(format!("step {i}: schedule picks disabled thread {t}"));
        }
        let out = sys.step(t, 0, sc);
        let thief = WorkerId(t as u32);
        let divergence = |got: &str| {
            Err(format!(
                "step {i} ({}): model did `{}` but SimDeque returned {got}",
                t, out.label
            ))
        };
        match &out.event {
            OpEvent::Micro => {
                return Err(format!(
                    "step {i}: micro-step in a phase-granularity schedule"
                ))
            }
            OpEvent::PushDone(v) => deque
                .push(&mut fabric, entry_for(*v))
                .map_err(|e| format!("push: {e:?}"))?,
            OpEvent::PopDone(expect) => {
                let r = deque.pop(&mut fabric).map_err(|e| format!("pop: {e:?}"))?;
                match (expect, r) {
                    (Some(v), PopOutcome::Entry(e)) if e.task == *v => {}
                    (None, PopOutcome::Empty) => {}
                    (_, got) => return divergence(&format!("{got:?}")),
                }
            }
            OpEvent::EmptyCheck { empty } => {
                let r = deque
                    .remote_empty_check(&mut fabric, now, thief)
                    .map_err(|e| format!("empty-check: {e:?}"))?;
                match (empty, &r) {
                    (true, StealOutcome::Empty(t)) | (false, StealOutcome::Ok(t)) => now = *t,
                    (_, got) => return divergence(&format!("{got:?}")),
                }
            }
            OpEvent::LockTry { acquired } => {
                let r = deque
                    .remote_try_lock(&mut fabric, now, thief)
                    .map_err(|e| format!("try-lock: {e:?}"))?;
                match (acquired, &r) {
                    (true, StealOutcome::Ok(t)) | (false, StealOutcome::LockBusy(t)) => now = *t,
                    (_, got) => return divergence(&format!("{got:?}")),
                }
            }
            OpEvent::StealPhase(expect) => {
                let r = deque
                    .remote_steal_entry(&mut fabric, now, thief)
                    .map_err(|e| format!("steal-entry: {e:?}"))?;
                match (expect, &r) {
                    (Some(v), StealOutcome::Ok((e, t))) if e.task == *v => now = *t,
                    (None, StealOutcome::Empty(t)) => now = *t,
                    (_, got) => return divergence(&format!("{got:?}")),
                }
            }
            OpEvent::Unlock => {
                now = deque
                    .remote_unlock(&mut fabric, now, thief)
                    .map_err(|e| format!("unlock: {e:?}"))?;
            }
        }
    }

    // Final shared state must agree word for word.
    let snap = deque
        .snapshot(&fabric)
        .map_err(|e| format!("snapshot: {e:?}"))?;
    if (snap.lock, snap.top, snap.bottom) != (sys.lock(), sys.top(), sys.bottom()) {
        return Err(format!(
            "final state diverged: SimDeque (lock={} top={} bottom={}) vs model (lock={} top={} bottom={})",
            snap.lock, snap.top, snap.bottom, sys.lock(), sys.top(), sys.bottom()
        ));
    }
    let real: Vec<u64> = snap.entries.iter().map(|e| e.task).collect();
    let model: Vec<u64> = (sys.top()..sys.bottom())
        .map(|p| sys.slot((p % sc.capacity) as usize))
        .collect();
    if real != model {
        return Err(format!(
            "final entries diverged: SimDeque {real:?} vs model {model:?}"
        ));
    }
    Ok(())
}
