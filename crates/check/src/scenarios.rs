//! The standard scenario suite, the weak-memory (release/acquire)
//! suite, and the seeded-mutation demos.

use crate::memory::MemModel;
use crate::model::{Family, Mutation, OwnerOp, Scenario};

use OwnerOp::{Pop, Push};

fn sim(name: &'static str, capacity: u64, owner: Vec<OwnerOp>, thieves: Vec<u32>) -> Scenario {
    Scenario {
        name,
        family: Family::SimPhase,
        mem_model: MemModel::Sc,
        capacity,
        batch: 1,
        prologue: Vec::new(),
        owner,
        thieves,
        mutation: Mutation::None,
    }
}

fn native(name: &'static str, capacity: u64, owner: Vec<OwnerOp>, thieves: Vec<u32>) -> Scenario {
    Scenario {
        family: Family::NativeOp,
        ..sim(name, capacity, owner, thieves)
    }
}

/// `NativeOp` under the release/acquire memory model: every load
/// branches over the messages its declared ordering permits.
fn ra(name: &'static str, capacity: u64, owner: Vec<OwnerOp>, thieves: Vec<u32>) -> Scenario {
    Scenario {
        mem_model: MemModel::Ra,
        ..native(name, capacity, owner, thieves)
    }
}

/// Prologue that advances positions past `rounds` slots so the
/// interleaved part runs on wrapped slot indices. Leaves the deque empty.
fn wrap_prologue(rounds: u64) -> Vec<OwnerOp> {
    (0..rounds).flat_map(|i| [Push(900 + i), Pop]).collect()
}

/// The clean suite: every scenario must report zero violations. Sized so
/// exhaustive exploration verifies every reachable state in well under a
/// second each while the combined interleaving count runs to millions.
pub fn standard_suite() -> Vec<Scenario> {
    vec![
        // Owner pushes/pops interleaved with one remote thief's phases.
        sim(
            "sim/1v1-interleave",
            4,
            vec![Push(1), Push(2), Pop, Push(3), Pop, Pop],
            vec![2],
        ),
        // The last-entry race at phase granularity: Contended pops,
        // raced-empty phase 3, owner fast-path wins.
        sim("sim/last-entry", 2, vec![Push(1), Pop], vec![2]),
        // Two thieves contend on the FAA lock while the owner drains.
        sim(
            "sim/two-thieves",
            4,
            vec![Push(1), Push(2), Pop, Pop],
            vec![2, 2],
        ),
        // Same protocol but with slot indices already wrapped.
        Scenario {
            prologue: wrap_prologue(3),
            ..sim(
                "sim/wraparound",
                2,
                vec![Push(1), Push(2), Pop, Pop],
                vec![2],
            )
        },
        // Deep drain: three entries, three pops, a three-attempt thief.
        sim(
            "sim/drain-race",
            4,
            vec![Push(1), Push(2), Push(3), Pop, Pop, Pop],
            vec![3],
        ),
        // NativeDeque at per-atomic-access granularity: the Dekker
        // store-load handshake for the last entry is visible here.
        native("native/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
        native(
            "native/two-thieves",
            2,
            vec![Push(1), Push(2), Pop],
            vec![1, 1],
        ),
        // Push immediately after a last-entry pop race: the fresh entry
        // reuses the slot a locked thief may be examining, and its
        // published bottom could resurrect a stale read — safe only
        // because the owner's strict fast-path bound keeps the whole
        // last-entry arbitration under the lock. (The scenario that
        // exposed the ABA hole in a bottom-validation variant of the
        // thief during development.)
        native(
            "native/push-race",
            2,
            vec![Push(1), Pop, Push(2), Pop],
            vec![2],
        ),
        // Wraparound safety: the locked slot read happens while
        // `top == t` still blocks slot reuse by the capacity check.
        Scenario {
            prologue: wrap_prologue(3),
            ..native(
                "native/wraparound",
                2,
                vec![Push(1), Push(2), Pop, Pop],
                vec![2],
            )
        },
        // Batched steal (transfer-k, ROADMAP item 3) modeled ahead of
        // its native implementation: a locked thief transfers up to two
        // entries per critical section and the owner's fast-path bound
        // widens to `top + 2 <= bottom - 1`. Still SC here; the RA suite
        // re-runs it under weak memory.
        Scenario {
            batch: 2,
            ..native(
                "native/batch2",
                3,
                vec![Push(1), Push(2), Push(3), Pop],
                vec![2],
            )
        },
    ]
}

/// The weak-memory clean suite: the same `NativeOp` protocol explored
/// under [`MemModel::Ra`], where every load branches over the messages
/// its declared ordering permits. Every scenario must still report zero
/// violations — together with the ordering-downgrade mutations this is
/// the machine-checked argument that `NativeDeque`'s orderings are
/// sufficient (see DESIGN.md §11).
pub fn weak_suite() -> Vec<Scenario> {
    vec![
        ra("ra/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        ra("ra/last-entry", 1, vec![Push(1), Pop], vec![2]),
        ra("ra/two-thieves", 2, vec![Push(1), Push(2), Pop], vec![1, 1]),
        ra("ra/push-race", 2, vec![Push(1), Pop, Push(2), Pop], vec![2]),
        // The publication edge (push Release -> steal Acquire) exercised
        // on wrapped, previously-occupied slots: a stale slot read here
        // would surface old prologue values as phantom tasks.
        Scenario {
            prologue: wrap_prologue(3),
            ..ra(
                "ra/wraparound",
                2,
                vec![Push(1), Push(2), Pop, Pop],
                vec![2],
            )
        },
        // Deep drain with repeated steals: exercises the Dekker pairs
        // (dip/locked-bottom and claim/re-read) across three claims.
        ra("ra/drain", 3, vec![Push(1), Push(2), Push(3), Pop], vec![3]),
        // Batched steal under weak memory.
        Scenario {
            batch: 2,
            ..ra(
                "ra/batch2",
                3,
                vec![Push(1), Push(2), Push(3), Pop],
                vec![2],
            )
        },
    ]
}

/// Scenario names whose full interleaving space is small enough to also
/// walk path-by-path (sleep-set mode + differential replay).
pub fn sleep_set_scenarios() -> &'static [&'static str] {
    &[
        "sim/1v1-interleave",
        "sim/last-entry",
        "sim/wraparound",
        "sim/drain-race",
    ]
}

/// Demo scenarios for one seeded mutation: small systems where the
/// checker must produce a counterexample trace. Ordering-downgrade
/// mutations come with RA scenarios (they are invisible under SC — the
/// test suite checks both directions).
pub fn mutation_demos(m: Mutation) -> Vec<Scenario> {
    assert_ne!(m, Mutation::None);
    let mut demos = match m {
        // Deleting the owner's top re-check is only observable at atomic
        // granularity (at phase atomicity the conflict path is dead code,
        // which the SimPhase model asserts).
        Mutation::SkipOwnerTopRecheck => vec![
            native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
            native("native/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        ],
        Mutation::SkipUnlockOnRacedEmpty => vec![
            sim("sim/last-entry", 2, vec![Push(1), Pop], vec![2]),
            native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
        ],
        // The latent bug found in the shipped `NativeDeque::pop`: the
        // owner takes the last entry lock-free whenever its top re-read
        // shows no published claim, racing a thief that is already
        // committed inside its locked critical section.
        Mutation::LastEntryFastPath => vec![
            native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
            native("native/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        ],
        // A push whose bottom bump no longer carries the entry write:
        // the thief's acquire pre-check synchronizes with nothing, so
        // its locked slot read may see the slot's previous contents.
        Mutation::PushPublishRelaxed => vec![ra("ra/publish", 2, vec![Push(1)], vec![1])],
        // Both directions of the pop/steal Dekker handshake on `bottom`:
        // the thief can read a pre-decrement bottom, walk past entries
        // the owner's fast path is draining, and double-claim on the
        // third attempt.
        Mutation::PopPublishRelease | Mutation::StealBottomRelaxed => vec![ra(
            "ra/drain",
            3,
            vec![Push(1), Push(2), Push(3), Pop],
            vec![3],
        )],
        // The lock hand-off chain broken from either end: the next
        // holder's relaxed locked re-reads see a stale `top` and take an
        // entry the previous holder already kept.
        Mutation::UnlockRelaxed | Mutation::LockCasRelaxed => vec![
            ra("ra/last-entry", 1, vec![Push(1), Pop], vec![1]),
            ra("ra/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        ],
        // A claim outside the SC order: the owner's SeqCst top re-read
        // can miss it and fast-path into the thief's committed range.
        Mutation::ClaimTopRelease => vec![ra("ra/claim", 3, vec![Push(1), Push(2), Pop], vec![2])],
        // Batched steal with the un-widened k=1 owner bound: caught even
        // under SC — the reason the bound must widen before native
        // batching ships. Two entries make the popped position fall
        // *inside* a locked thief's k=2 transfer range (with three, the
        // narrow and widened bounds happen to agree).
        Mutation::BatchNarrowOwnerBound => vec![Scenario {
            batch: 2,
            ..native(
                "native/batch2-narrow",
                3,
                vec![Push(1), Push(2), Pop],
                vec![1],
            )
        }],
        Mutation::None => unreachable!(),
    };
    for d in &mut demos {
        d.mutation = m;
    }
    demos
}
