//! The standard scenario suite and the seeded-mutation demos.

use crate::model::{Family, Mutation, OwnerOp, Scenario};

use OwnerOp::{Pop, Push};

fn sim(name: &'static str, capacity: u64, owner: Vec<OwnerOp>, thieves: Vec<u32>) -> Scenario {
    Scenario {
        name,
        family: Family::SimPhase,
        capacity,
        prologue: Vec::new(),
        owner,
        thieves,
        mutation: Mutation::None,
    }
}

fn native(name: &'static str, capacity: u64, owner: Vec<OwnerOp>, thieves: Vec<u32>) -> Scenario {
    Scenario {
        family: Family::NativeOp,
        ..sim(name, capacity, owner, thieves)
    }
}

/// Prologue that advances positions past `rounds` slots so the
/// interleaved part runs on wrapped slot indices. Leaves the deque empty.
fn wrap_prologue(rounds: u64) -> Vec<OwnerOp> {
    (0..rounds).flat_map(|i| [Push(900 + i), Pop]).collect()
}

/// The clean suite: every scenario must report zero violations. Sized so
/// exhaustive exploration verifies every reachable state in well under a
/// second each while the combined interleaving count runs to millions.
pub fn standard_suite() -> Vec<Scenario> {
    vec![
        // Owner pushes/pops interleaved with one remote thief's phases.
        sim(
            "sim/1v1-interleave",
            4,
            vec![Push(1), Push(2), Pop, Push(3), Pop, Pop],
            vec![2],
        ),
        // The last-entry race at phase granularity: Contended pops,
        // raced-empty phase 3, owner fast-path wins.
        sim("sim/last-entry", 2, vec![Push(1), Pop], vec![2]),
        // Two thieves contend on the FAA lock while the owner drains.
        sim(
            "sim/two-thieves",
            4,
            vec![Push(1), Push(2), Pop, Pop],
            vec![2, 2],
        ),
        // Same protocol but with slot indices already wrapped.
        Scenario {
            prologue: wrap_prologue(3),
            ..sim(
                "sim/wraparound",
                2,
                vec![Push(1), Push(2), Pop, Pop],
                vec![2],
            )
        },
        // Deep drain: three entries, three pops, a three-attempt thief.
        sim(
            "sim/drain-race",
            4,
            vec![Push(1), Push(2), Push(3), Pop, Pop, Pop],
            vec![3],
        ),
        // NativeDeque at per-atomic-access granularity: the Dekker
        // store-load handshake for the last entry is visible here.
        native("native/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
        native(
            "native/two-thieves",
            2,
            vec![Push(1), Push(2), Pop],
            vec![1, 1],
        ),
        // Push immediately after a last-entry pop race: the fresh entry
        // reuses the slot a locked thief may be examining, and its
        // published bottom could resurrect a stale read — safe only
        // because the owner's strict fast-path bound keeps the whole
        // last-entry arbitration under the lock. (The scenario that
        // exposed the ABA hole in a bottom-validation variant of the
        // thief during development.)
        native(
            "native/push-race",
            2,
            vec![Push(1), Pop, Push(2), Pop],
            vec![2],
        ),
        // Wraparound safety: the locked slot read happens while
        // `top == t` still blocks slot reuse by the capacity check.
        Scenario {
            prologue: wrap_prologue(3),
            ..native(
                "native/wraparound",
                2,
                vec![Push(1), Push(2), Pop, Pop],
                vec![2],
            )
        },
    ]
}

/// Scenario names whose full interleaving space is small enough to also
/// walk path-by-path (sleep-set mode + differential replay).
pub fn sleep_set_scenarios() -> &'static [&'static str] {
    &[
        "sim/1v1-interleave",
        "sim/last-entry",
        "sim/wraparound",
        "sim/drain-race",
    ]
}

/// Demo scenarios for one seeded mutation: small systems where the
/// checker must produce a counterexample trace.
pub fn mutation_demos(m: Mutation) -> Vec<Scenario> {
    assert_ne!(m, Mutation::None);
    let mut demos = match m {
        // Deleting the owner's top re-check is only observable at atomic
        // granularity (at phase atomicity the conflict path is dead code,
        // which the SimPhase model asserts).
        Mutation::SkipOwnerTopRecheck => vec![
            native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
            native("native/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        ],
        Mutation::SkipUnlockOnRacedEmpty => vec![
            sim("sim/last-entry", 2, vec![Push(1), Pop], vec![2]),
            native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
        ],
        // The latent bug found in the shipped `NativeDeque::pop`: the
        // owner takes the last entry lock-free whenever its top re-read
        // shows no published claim, racing a thief that is already
        // committed inside its locked critical section.
        Mutation::LastEntryFastPath => vec![
            native("native/last-entry", 1, vec![Push(1), Pop], vec![2]),
            native("native/1v1", 2, vec![Push(1), Push(2), Pop, Pop], vec![2]),
        ],
        Mutation::None => unreachable!(),
    };
    for d in &mut demos {
        d.mutation = m;
    }
    demos
}
