//! `uat-check` — exhaustive interleaving checker for the THE-protocol
//! steal path.
//!
//! The paper's correctness story (Figure 6, Table 3) rests on the THE
//! deque tolerating concurrent owner pops and one-sided remote steals.
//! This crate models both implementations the workspace carries —
//! `SimDeque` at simulator-event atomicity and `NativeDeque` at
//! per-atomic-access granularity — as explicit small-step state machines
//! over the shared words (lock, top, bottom, slots), and explores every
//! interleaving with DFS:
//!
//! - **exhaustive mode** visits every reachable state and transition
//!   (memoized; the state graph is finite and acyclic) and counts the
//!   exact number of distinct interleavings by dynamic programming;
//! - **sleep-set mode** walks concrete executions with Godefroid-style
//!   sleep sets plus stutter pruning, feeding the differential replay
//!   that re-runs explored schedules against the real `SimDeque` over a
//!   real `Fabric`;
//! - **weak-memory mode** ([`memory`], `--memory-model ra`) re-explores
//!   the `NativeOp` machine under C11 release/acquire semantics: each
//!   shared word keeps its full modification order, each thread a view
//!   (reads-from floor), and every load branches over the messages its
//!   declared `Ordering` permits — so the explorer covers the behaviors
//!   `NativeDeque`'s `Relaxed`/`Acquire`/`Release`/`SeqCst` annotations
//!   actually allow, not just SC interleavings, including the batched
//!   steal (transfer-k) extension modeled ahead of its native
//!   implementation.
//!
//! Checked on every reachable state: no task lost, no task stolen twice,
//! lock released on every path, `top <= bottom + 1`, owner-pop and
//! thief-steal never both claim the last entry (a double claim), and
//! capacity never exceeded. Seeded [`model::Mutation`]s prove the checker
//! bites: each must produce a human-readable counterexample trace.
//!
//! Run `cargo run -p uat-check --bin uat_check` for the suite, or
//! `--mutate <name>` for a counterexample demo; see the README for how
//! to read the traces.

#![forbid(unsafe_code)]

pub mod explore;
pub mod memory;
pub mod model;
pub mod replay;
pub mod scenarios;

pub use explore::{Explorer, Report, StepRecord, Violation, ViolationKind};
pub use memory::{Mem, MemModel, MemOrd};
pub use model::{Access, Family, Mutation, OrdSpec, OwnerOp, Scenario, Sys};
