//! The weak-memory explorer checking itself: the release/acquire suite
//! must verify clean, every ordering-downgrade mutation must be caught
//! with a readable counterexample trace, and — the other direction —
//! those same downgrades must be *invisible* under SC, which is the
//! machine-checked argument that the RA mode sees something the PR 3
//! explorer could not.

use uat_check::scenarios::{mutation_demos, weak_suite};
use uat_check::{Explorer, MemModel, Mutation, ViolationKind};

#[test]
fn weak_clean_suite_has_zero_violations() {
    let mut total_states = 0u64;
    for sc in &weak_suite() {
        let report = Explorer::new(sc, 0).run_exhaustive();
        assert!(
            report.violation.is_none(),
            "{}: unexpected violation under RA:\n{}",
            sc.name,
            report.violation.as_ref().unwrap().render(sc.name)
        );
        assert!(
            report.states > 0 && report.interleavings > 0,
            "{}: empty exploration",
            sc.name
        );
        total_states += report.states;
    }
    assert!(
        total_states >= 1_000,
        "weak suite coverage too small: {total_states} states"
    );
}

/// RA explores strictly more behaviors than SC on the same scenario:
/// every SC execution is the all-fresh-choices RA execution.
#[test]
fn ra_explores_a_superset_of_sc() {
    for sc in &weak_suite() {
        let ra = Explorer::new(sc, 0).run_exhaustive();
        let mut sc_version = sc.clone();
        sc_version.mem_model = MemModel::Sc;
        let sc_run = Explorer::new(&sc_version, 0).run_exhaustive();
        assert!(
            ra.interleavings >= sc_run.interleavings,
            "{}: RA found fewer executions ({}) than SC ({})",
            sc.name,
            ra.interleavings,
            sc_run.interleavings
        );
    }
}

const WEAK_MUTATIONS: [Mutation; 6] = [
    Mutation::PushPublishRelaxed,
    Mutation::PopPublishRelease,
    Mutation::StealBottomRelaxed,
    Mutation::UnlockRelaxed,
    Mutation::LockCasRelaxed,
    Mutation::ClaimTopRelease,
];

#[test]
fn every_ordering_downgrade_is_caught_with_a_trace() {
    for m in WEAK_MUTATIONS {
        let mut caught = 0;
        for sc in &mutation_demos(m) {
            let report = Explorer::new(sc, 0).run_exhaustive();
            if let Some(v) = &report.violation {
                caught += 1;
                assert!(
                    matches!(
                        v.kind,
                        ViolationKind::DoubleClaim { .. }
                            | ViolationKind::PhantomValue { .. }
                            | ViolationKind::LostValue { .. }
                    ),
                    "{} under {}: expected a safety violation, got: {}",
                    sc.name,
                    m.name(),
                    v.kind.describe()
                );
                let rendered = v.render(sc.name);
                assert!(rendered.contains("VIOLATION"), "trace missing verdict");
                assert!(
                    rendered.contains("MUTATED"),
                    "{}: trace does not show the downgraded access:\n{rendered}",
                    m.name()
                );
            }
        }
        assert!(
            caught > 0,
            "ordering downgrade {} produced no counterexample",
            m.name()
        );
    }
}

/// The same downgrades are invisible under SC — orderings don't exist
/// there. This is the gap the RA mode closes.
#[test]
fn ordering_downgrades_are_invisible_under_sc() {
    for m in WEAK_MUTATIONS {
        assert!(m.is_ordering_downgrade());
        for sc in &mutation_demos(m) {
            let mut sc_version = sc.clone();
            sc_version.mem_model = MemModel::Sc;
            let report = Explorer::new(&sc_version, 0).run_exhaustive();
            assert!(
                report.violation.is_none(),
                "{} under SC unexpectedly caught {} — it is not an \
                 ordering bug after all:\n{}",
                sc.name,
                m.name(),
                report.violation.as_ref().unwrap().render(sc.name)
            );
        }
    }
}

/// The batched-steal protocol bug (un-widened owner bound) is a
/// *protocol* regression: caught already under SC, before any native
/// batching ships (ROADMAP item 3).
#[test]
fn batch_narrow_owner_bound_is_caught_under_sc() {
    let mut caught = 0;
    for sc in &mutation_demos(Mutation::BatchNarrowOwnerBound) {
        assert_eq!(sc.mem_model, MemModel::Sc);
        let report = Explorer::new(sc, 0).run_exhaustive();
        if let Some(v) = &report.violation {
            caught += 1;
            assert!(
                matches!(v.kind, ViolationKind::DoubleClaim { .. }),
                "{}: expected a double claim, got: {}",
                sc.name,
                v.kind.describe()
            );
            assert!(v.render(sc.name).contains("MUTATED"));
        }
    }
    assert!(caught > 0, "batch-owner-bound produced no counterexample");
}

/// The push-publish audit (ISSUE 8 satellite): `Release` is the weakest
/// safe ordering for the publishing bottom store. The clean RA suite
/// (which runs `Release`, matching native.rs) passes — SeqCst is not
/// needed — while the `Relaxed` downgrade loses the entry-write edge
/// and is caught as a phantom/lost task.
#[test]
fn push_publish_release_is_proven_weakest_safe() {
    // Safe side: covered by weak_clean_suite_has_zero_violations (the
    // suite runs OrdSpec::native with push_publish = Release). Unsafe
    // side: Relaxed must produce a stale-slot counterexample.
    let mut phantom_or_lost = 0;
    for sc in &mutation_demos(Mutation::PushPublishRelaxed) {
        let report = Explorer::new(sc, 0).run_exhaustive();
        if let Some(v) = &report.violation {
            assert!(
                matches!(
                    v.kind,
                    ViolationKind::PhantomValue { .. } | ViolationKind::LostValue { .. }
                ),
                "{}: expected a stale-slot manifestation, got: {}",
                sc.name,
                v.kind.describe()
            );
            phantom_or_lost += 1;
        }
    }
    assert!(phantom_or_lost > 0);
}
