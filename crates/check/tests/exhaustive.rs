//! The checker checking itself: the clean suite must verify every
//! reachable state with zero violations, the sleep-set mode must agree
//! with brute force, differential replay must conform against the real
//! `SimDeque`, and each seeded mutation must be caught with a trace.

use uat_check::scenarios::{mutation_demos, sleep_set_scenarios, standard_suite};
use uat_check::{replay, Explorer, Mutation, ViolationKind};

#[test]
fn clean_suite_has_zero_violations_and_broad_coverage() {
    let mut total_interleavings: u128 = 0;
    let mut total_states: u64 = 0;
    for sc in &standard_suite() {
        let report = Explorer::new(sc, 0).run_exhaustive();
        assert!(
            report.violation.is_none(),
            "{}: unexpected violation:\n{}",
            sc.name,
            report.violation.as_ref().unwrap().render(sc.name)
        );
        assert!(
            report.states > 0 && report.interleavings > 0,
            "{}: empty exploration",
            sc.name
        );
        total_interleavings += report.interleavings;
        total_states += report.states;
    }
    // The acceptance bar is 10k distinct interleavings; the suite covers
    // orders of magnitude more.
    assert!(
        total_interleavings >= 10_000,
        "suite coverage too small: {total_interleavings} interleavings"
    );
    assert!(
        total_states >= 1_000,
        "suite coverage too small: {total_states} states"
    );
}

#[test]
fn sleep_set_exploration_agrees_with_brute_force() {
    for sc in &standard_suite() {
        if !sleep_set_scenarios().contains(&sc.name) {
            continue;
        }
        let exhaustive = Explorer::new(sc, 0).run_exhaustive();
        let sleepy = Explorer::new(sc, 0).run_sleep_sets();
        assert!(
            sleepy.violation.is_none(),
            "{}: sleep-set violation",
            sc.name
        );
        assert_eq!(
            sleepy.final_states, exhaustive.final_states,
            "{}: sleep-set pruning missed quiescent states",
            sc.name
        );
        assert!(
            sleepy.interleavings <= exhaustive.interleavings,
            "{}: pruning explored more executions than exist",
            sc.name
        );
        assert!(sleepy.sleep_pruned > 0, "{}: pruning never fired", sc.name);
    }
}

#[test]
fn sleep_set_schedules_replay_against_real_simdeque() {
    let suite = standard_suite();
    for name in sleep_set_scenarios() {
        let sc = suite.iter().find(|s| s.name == *name).unwrap();
        let sleepy = Explorer::new(sc, 2000).run_sleep_sets();
        assert!(
            !sleepy.schedules.is_empty(),
            "{name}: no schedules recorded"
        );
        let replayed = replay::replay_schedules(sc, &sleepy.schedules)
            .unwrap_or_else(|e| panic!("{name}: replay divergence: {e}"));
        assert_eq!(replayed, sleepy.schedules.len() as u64);
    }
}

fn assert_mutation_caught(m: Mutation, want_double_claim: bool) {
    let mut caught = 0;
    for sc in &mutation_demos(m) {
        let report = Explorer::new(sc, 0).run_exhaustive();
        if let Some(v) = &report.violation {
            caught += 1;
            if want_double_claim {
                assert!(
                    matches!(v.kind, ViolationKind::DoubleClaim { .. }),
                    "{}: expected a double claim, got: {}",
                    sc.name,
                    v.kind.describe()
                );
            }
            // The rendered trace must be a readable interleaving.
            let rendered = v.render(sc.name);
            assert!(rendered.contains("VIOLATION"), "trace missing verdict");
            assert!(
                rendered.contains("MUTATED"),
                "trace does not show the mutated step"
            );
        }
    }
    assert!(
        caught > 0,
        "mutation {} produced no counterexample",
        m.name()
    );
}

#[test]
fn mutation_owner_top_recheck_is_caught() {
    assert_mutation_caught(Mutation::SkipOwnerTopRecheck, true);
}

#[test]
fn mutation_unlock_drop_is_caught() {
    let mut caught = 0;
    for sc in &mutation_demos(Mutation::SkipUnlockOnRacedEmpty) {
        let report = Explorer::new(sc, 0).run_exhaustive();
        if let Some(v) = &report.violation {
            caught += 1;
            assert!(
                matches!(
                    v.kind,
                    ViolationKind::LockLeak { .. } | ViolationKind::Stuck
                ),
                "{}: expected a lock leak or wedge, got: {}",
                sc.name,
                v.kind.describe()
            );
        }
    }
    assert!(caught > 0, "unlock-drop produced no counterexample");
}

#[test]
fn mutation_last_entry_fast_path_is_caught() {
    // The latent bug the checker found in the shipped NativeDeque::pop:
    // taking the last entry lock-free double-claims against a thief
    // already inside its locked critical section.
    assert_mutation_caught(Mutation::LastEntryFastPath, true);
}
