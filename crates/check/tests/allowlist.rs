//! The model, the code, and the lint share one ordering catalogue:
//! `uat_deque::layout::ORDERING_ALLOWLIST`. This test pins the model's
//! side of the contract — every ordering `OrdSpec::native()` assigns to
//! a control-word access must be listed in the allowlist for that
//! (field, operation). The lint (`uat-lint`, rule B) pins the code's
//! side by scanning `native.rs` against the same table.

use uat_check::{MemOrd, OrdSpec};
use uat_deque::layout::ORDERING_ALLOWLIST;

fn assert_allowed(field: &str, op: &str, ord: MemOrd) {
    let allowed = ORDERING_ALLOWLIST
        .iter()
        .find(|(f, o, _)| *f == field && *o == op)
        .unwrap_or_else(|| panic!("no allowlist entry for {field}.{op}"))
        .2;
    assert!(
        allowed.contains(&ord.name()),
        "{field}.{op} with {} is not in the allowlist {allowed:?}",
        ord.name()
    );
}

#[test]
fn native_ordspec_is_within_the_layout_allowlist() {
    let s = OrdSpec::native();
    // Owner push.
    assert_allowed("top", "load", s.push_read_top);
    assert_allowed("bottom", "store", s.push_publish);
    // Owner pop: advisory read, dip, re-read, restore, locked take.
    assert_allowed("top", "load", s.pop_read_top0);
    assert_allowed("bottom", "store", s.pop_dec_bottom);
    assert_allowed("top", "load", s.pop_reread_top);
    assert_allowed("bottom", "store", s.pop_restore_bottom);
    assert_allowed("top", "load", s.pop_locked_top);
    assert_allowed("bottom", "store", s.pop_take_bottom);
    // Lock hand-off.
    assert_allowed("lock", "compare_exchange", s.lock_cas);
    assert_allowed("lock", "store", s.unlock);
    // Thief: pre-check, locked re-reads, claim.
    assert_allowed("top", "load", s.pre_top);
    assert_allowed("bottom", "load", s.pre_bottom);
    assert_allowed("top", "load", s.locked_top);
    assert_allowed("bottom", "load", s.locked_bottom);
    assert_allowed("top", "store", s.claim_top);
    // (push_write_slot / slot_read address entries, not control words —
    // they are plain accesses in native.rs, ordered by the publication
    // edge, and have no allowlist row.)
}

/// The specific result of the push-publish audit (ISSUE 8 satellite):
/// the model runs `Release`, the weakest ordering the RA explorer proves
/// safe, and native.rs must agree — a SeqCst regression here would both
/// diverge from the proven spec and silently re-pessimize the hot path.
#[test]
fn push_publish_is_release_not_seqcst() {
    assert_eq!(OrdSpec::native().push_publish, MemOrd::Release);
}
