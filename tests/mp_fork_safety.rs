//! Fork-safety regression test for the multiprocess backend.
//!
//! A worker child of the (multithreaded) test harness may not allocate
//! or take any lock between `fork` and its worker-loop entry — another
//! thread could hold the allocator lock at fork time, deadlocking the
//! child (invariant [I15] in DESIGN.md §7.6). This test enforces the
//! *allocation* half dynamically: a counting `#[global_allocator]`
//! feeds the runtime's bootstrap probe, each worker samples it at both
//! ends of the window, and the per-worker deltas must all be zero.
//!
//! The *lock* half (and the allocation half, statically) is enforced by
//! `uat-lint`'s `fork-safety` rule, which scans `mp_bootstrap` and its
//! callees for alloc/lock constructs — a dynamic lock test can't see a
//! lock that happened not to be contended.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use uni_address_threads::fiber::{set_bootstrap_alloc_probe, MultiProcessRunner};
use uni_address_threads::model::testutil::BinTree;

/// Counts every allocation in this binary (and, after `fork`, in each
/// worker — the counter is plain process memory, so each child counts
/// its own allocations from its inherited baseline).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours, delegated.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from our `alloc`, i.e. from `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn probe() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn bootstrap_window_performs_no_allocations() {
    if let Err(e) = MultiProcessRunner::probe_support() {
        eprintln!("skipping fork-safety test: {e}");
        return;
    }
    set_bootstrap_alloc_probe(probe);
    let report = MultiProcessRunner::new(4)
        .with_work_divisor(u64::MAX)
        .try_run(BinTree {
            depth: 6,
            work: 500,
            frame: 512,
        })
        .expect("probe passed; the run must complete");
    assert_eq!(report.stats.total_tasks, (1 << 7) - 1);
    assert_eq!(
        report.bootstrap_allocs,
        vec![0u64; 4],
        "a worker allocated between fork and worker-loop entry ([I15])"
    );
}
