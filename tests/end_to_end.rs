//! End-to-end integration: workloads → engine → core → deque → rdma →
//! vmem, all through the public facade.

use uni_address_threads::cluster::workload::sequential_profile;
use uni_address_threads::cluster::{Engine, SimConfig};
use uni_address_threads::core::SchemeKind;
use uni_address_threads::workloads::{Btc, Chain, Fib, NQueens, Uts};

fn verified(workers: u32) -> SimConfig {
    let mut cfg = SimConfig::tiny(workers);
    cfg.core.verify_stack_bytes = true;
    cfg.core.iso_stacks_per_worker = 512;
    cfg.max_events = 100_000_000;
    cfg
}

#[test]
fn btc_exact_task_count_across_machine_sizes() {
    let w = Btc::new(10, 1);
    for workers in [1u32, 2, 7, 16] {
        let stats = Engine::new(verified(workers), w.clone()).run();
        assert_eq!(stats.total_tasks, w.expected_tasks(), "workers={workers}");
    }
}

#[test]
fn btc_iter2_parallelism_bursts() {
    let w = Btc::new(6, 2);
    let stats = Engine::new(verified(8), w.clone()).run();
    assert_eq!(stats.total_tasks, w.expected_tasks());
    assert!(stats.steals_completed > 0);
}

#[test]
fn uts_tree_shape_is_machine_independent() {
    // The tree the parallel machines traverse must be byte-identical to
    // the sequential one — that is the SHA-1 splittable-RNG property.
    let w = Uts::geometric(7);
    let seq = sequential_profile(&w);
    for workers in [1u32, 4, 12] {
        let stats = Engine::new(verified(workers), w.clone()).run();
        assert_eq!(stats.total_tasks, seq.tasks, "workers={workers}");
        assert_eq!(stats.total_units, seq.units);
        assert_eq!(stats.total_work_cycles, seq.work_cycles);
    }
}

#[test]
fn nqueens_counts_all_positions() {
    let w = NQueens::new(7);
    let seq = sequential_profile(&w);
    let stats = Engine::new(verified(6), w).run();
    assert_eq!(stats.total_units, seq.units);
}

#[test]
fn fib_matches_closed_form() {
    let w = Fib::new(16);
    let expected = w.expected_tasks();
    let stats = Engine::new(verified(4), w).run();
    assert_eq!(stats.total_tasks, expected);
}

#[test]
fn uni_and_iso_execute_identical_trees() {
    let w = Uts::geometric(6);
    let uni = Engine::new(verified(4).with_scheme(SchemeKind::Uni), w.clone()).run();
    let iso = Engine::new(verified(4).with_scheme(SchemeKind::Iso), w.clone()).run();
    assert_eq!(uni.total_tasks, iso.total_tasks);
    assert_eq!(uni.total_units, iso.total_units);
    // The schemes differ exactly where the paper says they do.
    assert_eq!(uni.page_faults, 0);
    assert!(iso.page_faults > 0);
    assert!(iso.reserved_va_per_worker > uni.reserved_va_per_worker);
}

#[test]
fn chain_ping_pong_is_steal_dominated() {
    let mut cfg = verified(2);
    cfg.topo = uni_address_threads::base::Topology::new(2, 1);
    let stats = Engine::new(cfg, Chain::fig10(100)).run();
    assert!(stats.steals_completed >= 80);
    // Every completed steal moved the 3,055-byte root.
    assert!(stats.fabric.read_bytes >= stats.steals_completed * 3_055);
}

#[test]
fn determinism_across_runs_and_schemes() {
    for scheme in [SchemeKind::Uni, SchemeKind::Iso] {
        let a = Engine::new(verified(6).with_scheme(scheme), Btc::new(9, 1)).run();
        let b = Engine::new(verified(6).with_scheme(scheme), Btc::new(9, 1)).run();
        assert_eq!(a.makespan, b.makespan, "{scheme:?}");
        assert_eq!(a.events, b.events);
        assert_eq!(a.steals_completed, b.steals_completed);
        assert_eq!(a.peak_stack_usage, b.peak_stack_usage);
    }
}

#[test]
fn stack_usage_scales_with_depth_not_machine() {
    // Table 4's property: the uni-address region usage tracks the task
    // tree depth, not the worker count.
    let d8 = Engine::new(verified(4), Btc::new(8, 1)).run();
    let d12 = Engine::new(verified(4), Btc::new(12, 1)).run();
    let d12_wide = Engine::new(verified(16), Btc::new(12, 1)).run();
    assert!(d12.peak_stack_usage > d8.peak_stack_usage);
    // Wider machines do not inflate the per-worker region usage.
    assert!(d12_wide.peak_stack_usage <= d12.peak_stack_usage + 2 * 1_120);
    // And everything respects the paper's 144 KiB bound.
    assert!(d12_wide.peak_stack_usage < 144 * 1024);
}

#[test]
fn steal_breakdown_phases_are_ordered_sanely() {
    use uni_address_threads::core::StealPhase;
    let mut cfg = verified(2);
    cfg.topo = uni_address_threads::base::Topology::new(2, 1);
    let stats = Engine::new(cfg, Chain::fig10(200)).run();
    let b = &stats.breakdown;
    // Lock (software FAA) is the most expensive protocol phase, as in
    // Figure 10.
    assert!(b.phase(StealPhase::Lock).mean >= 9_800.0 - 1.0);
    assert!(b.phase(StealPhase::Lock).mean > b.phase(StealPhase::EmptyCheck).mean);
    assert!(b.phase(StealPhase::Steal).mean > b.phase(StealPhase::Unlock).mean);
    // Stack transfer moves 3,055 bytes and beats the 8-byte unlock.
    assert!(b.phase(StealPhase::StackTransfer).mean > b.phase(StealPhase::Unlock).mean);
}

#[test]
fn work_cycles_conserved_under_iso() {
    let w = Btc {
        depth: 8,
        iter: 1,
        work: 777,
    };
    let seq = sequential_profile(&w);
    let stats = Engine::new(verified(5).with_scheme(SchemeKind::Iso), w).run();
    assert_eq!(stats.total_work_cycles, seq.work_cycles);
}
