//! Differential harness: every backend executes the one task model.
//!
//! The workspace has three executors for `uat-model` `Action` programs —
//! the deterministic FX10 cluster simulation (`uat-cluster::Engine`),
//! the native x86-64 fiber runtime (`uat-fiber::NativeRunner`), and the
//! process-per-worker uni-address backend
//! (`uat-fiber::MultiProcessRunner`) — plus the sequential ground truth
//! (`sequential_profile`). For any workload, all of them must expand the
//! *identical* task tree: same task count, same units, same work cycles,
//! and (parallel runtimes vs. model) the same schedule-independent
//! join-tree fingerprint. A divergence means one backend dropped,
//! duplicated, or mis-joined a task.
//!
//! The multiprocess leg runs at two worker counts and is skipped (with
//! the kernel's reason, printed once) only where `memfd_create` +
//! `MAP_FIXED_NOREPLACE` are unavailable.

use proptest::prelude::*;
use uni_address_threads::cluster::{Engine, SimConfig};
use uni_address_threads::fiber::{MultiProcessRunner, NativeRunner};
use uni_address_threads::model::{join_tree_fingerprint, sequential_profile, Action, Workload};
use uni_address_threads::workloads::{Btc, Chain, Fib, NQueens, Uts};

/// Native runner tuned for differential checks: accounting is exact, but
/// the calibrated `Work` spinning is divided down so a run takes
/// microseconds, not the workload's simulated cycle budget.
fn native(workers: usize) -> NativeRunner {
    NativeRunner::new(workers).with_work_divisor(1 << 20)
}

/// Multiprocess runner with the same tuning as [`native`].
fn multiprocess(workers: usize) -> MultiProcessRunner {
    MultiProcessRunner::new(workers).with_work_divisor(1 << 20)
}

/// Once-probed backend support; the skip reason is printed exactly once.
fn mp_supported() -> bool {
    static SUPPORT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SUPPORT.get_or_init(|| match MultiProcessRunner::probe_support() {
        Ok(()) => true,
        Err(e) => {
            eprintln!("skipping multiprocess differential leg: {e}");
            false
        }
    })
}

fn sim_cfg(workers: u32) -> SimConfig {
    let mut cfg = SimConfig::tiny(workers);
    cfg.core.verify_stack_bytes = true;
    cfg.core.iso_stacks_per_worker = 512;
    cfg.max_events = 100_000_000;
    cfg
}

/// Run `w` through the simulator, the native runtime, and the sequential
/// profiler, and require full agreement on every backend-invariant
/// quantity.
fn assert_backends_agree<W>(w: W)
where
    W: Workload + Clone + Send + Sync + 'static,
    W::Desc: Copy + 'static,
{
    let name = w.name();
    let p = sequential_profile(&w);

    let sim = Engine::new(sim_cfg(4), w.clone()).run();
    assert_eq!(sim.total_tasks, p.tasks, "sim tasks diverge: {name}");
    assert_eq!(sim.total_units, p.units, "sim units diverge: {name}");
    assert_eq!(
        sim.total_work_cycles, p.work_cycles,
        "sim work diverges: {name}"
    );

    let nat = native(2).run(w.clone());
    assert_eq!(nat.total_tasks, p.tasks, "native tasks diverge: {name}");
    assert_eq!(nat.total_units, p.units, "native units diverge: {name}");
    assert_eq!(
        nat.total_work_cycles, p.work_cycles,
        "native work diverges: {name}"
    );
    assert_eq!(nat.joins, p.joins, "native joins diverge: {name}");
    assert_eq!(nat.spawns, p.spawns, "native spawns diverge: {name}");
    assert_eq!(
        nat.frame_bytes_total, p.frame_bytes_total,
        "native frame bytes diverge: {name}"
    );
    assert_eq!(
        nat.join_fingerprint,
        join_tree_fingerprint(&w),
        "native join-tree shape diverges: {name}"
    );

    // Transitivity spot-check: the two parallel backends agree directly.
    assert_eq!(sim.total_tasks, nat.total_tasks, "{name}");
    assert_eq!(sim.total_units, nat.total_units, "{name}");

    // Third backend: the same tree across *address spaces*, at two
    // worker-process counts.
    if mp_supported() {
        for workers in [2usize, 4] {
            let mp = multiprocess(workers).run(w.clone());
            let tag = format!("{name} (mp workers={workers})");
            assert_eq!(mp.total_tasks, p.tasks, "mp tasks diverge: {tag}");
            assert_eq!(mp.total_units, p.units, "mp units diverge: {tag}");
            assert_eq!(
                mp.total_work_cycles, p.work_cycles,
                "mp work diverges: {tag}"
            );
            assert_eq!(mp.joins, p.joins, "mp joins diverge: {tag}");
            assert_eq!(mp.spawns, p.spawns, "mp spawns diverge: {tag}");
            assert_eq!(
                mp.frame_bytes_total, p.frame_bytes_total,
                "mp frame bytes diverge: {tag}"
            );
            assert_eq!(
                mp.join_fingerprint,
                join_tree_fingerprint(&w),
                "mp join-tree shape diverges: {tag}"
            );
            assert_eq!(
                mp.join_fingerprint, nat.join_fingerprint,
                "native vs multiprocess fingerprints diverge: {tag}"
            );
            assert_eq!(sim.total_tasks, mp.total_tasks, "{tag}");
        }
    }
}

// ---- fixed cases: every paper workload, both backends ----------------

#[test]
fn fib_backends_agree() {
    assert_backends_agree(Fib::new(12));
}

#[test]
fn btc_backends_agree() {
    assert_backends_agree(Btc::new(8, 1));
}

#[test]
fn uts_backends_agree() {
    assert_backends_agree(Uts::geometric(5));
}

#[test]
fn nqueens_backends_agree() {
    assert_backends_agree(NQueens::new(6));
}

#[test]
fn chain_backends_agree() {
    assert_backends_agree(Chain::fig10(50));
}

// ---- randomized cases ------------------------------------------------

/// The same randomized fork-join generator the cluster property tests
/// use: tree shape, work, and frames all derive from a seed, so the
/// sequential profile is ground truth for any backend.
#[derive(Clone, Debug)]
struct RandomTree {
    seed: u64,
    max_depth: u32,
    max_children: u32,
}

type Desc = (u32, u64);

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl Workload for RandomTree {
    type Desc = Desc;

    fn root(&self) -> Desc {
        (0, self.seed)
    }

    fn program(&self, &(depth, h): &Desc, out: &mut Vec<Action<Desc>>) {
        let work = mix(h, 1) % 2_000;
        if work > 0 {
            out.push(Action::Work(work));
        }
        if depth >= self.max_depth {
            return;
        }
        let n = (mix(h, 2) % (self.max_children as u64 + 1)) as u32;
        let phases = 1 + (mix(h, 3) % 2) as u32;
        let mut spawned = 0;
        for p in 0..phases {
            let in_phase = if p + 1 == phases { n - spawned } else { n / 2 };
            for i in 0..in_phase {
                out.push(Action::Spawn((
                    depth + 1,
                    mix(h, 100 + u64::from(spawned + i)),
                )));
            }
            spawned += in_phase;
            if in_phase > 0 {
                out.push(Action::JoinAll);
            }
        }
    }

    fn frame_size(&self, &(_, h): &Desc) -> u64 {
        64 + mix(h, 4) % 3_000
    }

    fn name(&self) -> String {
        format!("random-tree({:#x})", self.seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any random fork-join tree expands identically on both backends.
    #[test]
    fn random_trees_agree(seed in any::<u64>()) {
        let tree = RandomTree { seed, max_depth: 6, max_children: 3 };
        prop_assume!(sequential_profile(&tree).tasks < 10_000);
        assert_backends_agree(tree);
    }

    /// Small parameterized paper workloads agree for random sizes.
    #[test]
    fn random_small_workloads_agree(
        fib_n in 5u32..13,
        queens in 4u32..7,
        rounds in 1u32..40,
    ) {
        assert_backends_agree(Fib::new(fib_n));
        assert_backends_agree(NQueens::new(queens));
        assert_backends_agree(Chain::fig10(rounds));
    }
}
