//! Native live-metrics acceptance: one uts11 run on real fibers with
//! the registry, the sampler, *and* the tracer attached, then every
//! exported total is checked against the ground truth the structured
//! trace independently recorded. The trace and the metrics tier hook
//! the same scheduler sites but share no state — agreement here means
//! the always-on counters and histograms report the same run the
//! offline trace proves happened.

#![cfg(all(feature = "metrics", feature = "trace", target_arch = "x86_64"))]

use std::sync::Arc;
use uni_address_threads::fiber::{nmetrics::DEFAULT_SAMPLE_INTERVAL, NativeRunner};
use uni_address_threads::metrics::{names, Registry};
use uni_address_threads::trace::{EventKind, StealOutcome};
use uni_address_threads::workloads::Uts;

#[test]
fn exported_totals_match_trace_ground_truth() {
    let workers = 2;
    let registry = Arc::new(Registry::new(workers));
    // Rings big enough that nothing drops: a dropped event would void
    // the "same run" premise of every equality below (asserted first).
    let (stats, trace) = NativeRunner::new(workers)
        .with_metrics(Arc::clone(&registry))
        .with_sampler(DEFAULT_SAMPLE_INTERVAL)
        .with_tracing(1 << 23)
        .run_traced(Uts::geometric(11));
    assert_eq!(stats.trace_dropped, 0, "rings dropped events");
    let snap = registry.snapshot();

    // Task counts: scheduler accounting, metrics counter, task-run
    // histogram, and trace TaskEnd events must all agree exactly.
    let task_ends = trace
        .data
        .events()
        .filter(|e| matches!(e.kind, EventKind::TaskEnd { .. }))
        .count() as u64;
    assert_eq!(snap.total(names::TASKS), stats.total_tasks);
    assert_eq!(task_ends, stats.total_tasks);
    let run_hist = snap
        .histogram(names::TASK_RUN)
        .expect("task-run histogram registered");
    assert_eq!(run_hist.count(), stats.total_tasks);

    // Steal counts: every attempt in a traced+metered run takes the
    // phase-stamped path, so StealResult events partition exactly into
    // the completed/failed counters and each one fed the latency
    // histogram.
    let (mut ok, mut failed) = (0u64, 0u64);
    for e in trace.data.events() {
        if let EventKind::StealResult { outcome, .. } = e.kind {
            match outcome {
                StealOutcome::Completed => ok += 1,
                _ => failed += 1,
            }
        }
    }
    assert_eq!(snap.total(names::STEALS_COMPLETED), ok);
    assert_eq!(snap.total(names::STEALS_FAILED), failed);
    assert_eq!(ok, stats.steals);
    let steal_hist = snap
        .histogram(names::STEAL_LATENCY)
        .expect("steal-latency histogram registered");
    assert_eq!(steal_hist.count(), ok + failed);

    // The sampler ran: a multi-second run at the default interval must
    // tick many times, and each tick samples every worker's deque.
    let depth_hist = snap
        .histogram(names::DEQUE_DEPTH)
        .expect("deque-depth histogram registered");
    assert!(
        depth_hist.count() >= workers as u64,
        "sampler recorded {} depth samples",
        depth_hist.count()
    );
    assert!(snap.total(names::HEARTBEATS) > 0, "no scheduler heartbeats");
    assert_eq!(snap.total(names::TRACE_DROPPED), 0);
}
