//! Integration tests for the native fiber runtime: real context
//! switching, real stealing, results cross-checked against sequential
//! and simulated executions.

use uni_address_threads::fiber::{self, Runtime};
use uni_address_threads::workloads::nqueens::Board;
use uni_address_threads::workloads::NQueens;

fn fib_fiber(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let a = fiber::spawn(move || fib_fiber(n - 1));
    let b = fib_fiber(n - 2);
    a.join() + b
}

#[test]
fn fib_across_worker_counts() {
    for workers in [1usize, 2, 4] {
        let rt = Runtime::new(workers);
        assert_eq!(rt.run(|| fib_fiber(20)), 6_765, "workers={workers}");
    }
}

#[test]
fn nqueens_native_matches_sequential() {
    fn solve(board: Board, n: u32) -> u64 {
        if board.row == n {
            return 1;
        }
        let mut mask = board.safe_columns(n);
        if n - board.row <= 5 {
            let mut total = 0;
            while mask != 0 {
                let col = mask.trailing_zeros();
                mask &= mask - 1;
                total += solve(board.place(col), n);
            }
            return total;
        }
        let mut handles = Vec::new();
        while mask != 0 {
            let col = mask.trailing_zeros();
            mask &= mask - 1;
            let child = board.place(col);
            handles.push(fiber::spawn(move || solve(child, n)));
        }
        handles.into_iter().map(|h| h.join()).sum()
    }
    let rt = Runtime::new(3);
    let got = rt.run(|| solve(Board::empty(), 9));
    assert_eq!(got, NQueens::new(9).solutions());
}

#[test]
fn runtime_is_reusable() {
    let rt = Runtime::new(2);
    assert_eq!(rt.run(|| fib_fiber(10)), 55);
    assert_eq!(rt.run(|| fib_fiber(12)), 144);
}

#[test]
fn unbalanced_spawn_tree() {
    // UTS-like shape natively: skewed recursion where one side is much
    // deeper — the load balancer has to move work.
    fn skew(depth: u32, fat: bool) -> u64 {
        if depth == 0 {
            return 1;
        }
        let d2 = if fat {
            depth - 1
        } else {
            depth.saturating_sub(3)
        };
        let a = fiber::spawn(move || skew(depth - 1, fat));
        let b = if d2 == 0 { 1 } else { skew(d2, !fat) };
        a.join() + b
    }
    let rt = Runtime::new(4);
    let par = rt.run(|| skew(16, true));
    // Same computation sequentially.
    fn seq(depth: u32, fat: bool) -> u64 {
        if depth == 0 {
            return 1;
        }
        let d2 = if fat {
            depth - 1
        } else {
            depth.saturating_sub(3)
        };
        seq(depth - 1, fat) + if d2 == 0 { 1 } else { seq(d2, !fat) }
    }
    assert_eq!(par, seq(16, true));
}

#[test]
fn join_handles_can_outlive_spawning_order() {
    let rt = Runtime::new(2);
    let total = rt.run(|| {
        let handles: Vec<_> = (0..64u64).map(|i| fiber::spawn(move || i * i)).collect();
        // Join in reverse: forces the non-parent-pop paths.
        handles.into_iter().rev().map(|h| h.join()).sum::<u64>()
    });
    assert_eq!(total, (0..64u64).map(|i| i * i).sum());
}

#[test]
fn creation_strategies_all_work_under_load() {
    use uni_address_threads::fiber::{measure_creation, CreationStrategy};
    for s in [
        CreationStrategy::SeqCall,
        CreationStrategy::UniAddr,
        CreationStrategy::StackPool,
    ] {
        let cycles = measure_creation(s, 1_000, 5);
        assert!(cycles > 0.0 && cycles < 50_000.0, "{s:?} -> {cycles}");
    }
}
