//! Native-tracing invariants, run through the shared task model on the
//! real fiber runtime (the observability counterpart of
//! `native_runtime.rs`).
//!
//! For each paper workload, a traced native run must satisfy:
//!
//! 1. **Tiling** — every worker's bucket account sums to exactly the
//!    run makespan when no ring dropped events (the trace is a
//!    partition of wall-cycles, not a sample of them).
//! 2. **Monotonicity** — per worker, instant-event timestamps are
//!    non-decreasing in ring order (each worker stamps its own ring
//!    from one monotone clock).
//! 3. **Profilability** — `profile::Dag` accepts the trace and the
//!    happens-before graph is acyclic, so critical-path and what-if
//!    analysis work on native traces exactly as on simulated ones.
//!
//! A deliberately tiny ring additionally checks the degraded mode:
//! `Dag::build` refuses lossy traces, while the online accounts stay
//! within epsilon of the makespan.

#![cfg(all(feature = "trace", target_arch = "x86_64"))]

use uni_address_threads::fiber::NativeRunner;
use uni_address_threads::model::Workload;
use uni_address_threads::trace::{critical_path, Dag, ProfileError};
use uni_address_threads::workloads::{Btc, Chain, Fib, NQueens, Uts};

/// Run `w` traced on `workers` workers and check invariants 1–3.
fn check_traced<W>(w: W, workers: usize)
where
    W: Workload + Send + Sync + 'static,
    W::Desc: 'static,
{
    let name = w.name();
    let (stats, trace) = NativeRunner::new(workers)
        .with_work_divisor(8)
        .run_traced(w);
    assert_eq!(
        stats.trace_dropped, 0,
        "{name}: rings must not drop at default capacity"
    );
    let makespan = trace.data.makespan.get();
    assert!(makespan > 0, "{name}: zero makespan");
    assert!(
        trace.data.workers.iter().any(|r| !r.is_empty()),
        "{name}: all event rings empty"
    );

    // 1. Buckets tile wall-cycles exactly in the drop-free case.
    assert_eq!(trace.accounts.len(), workers, "{name}: account per worker");
    for (i, acc) in trace.accounts.iter().enumerate() {
        assert_eq!(
            acc.total().get(),
            makespan,
            "{name}: worker {i} buckets do not tile the makespan"
        );
    }

    // 2. Instant timestamps are monotone per worker in ring order.
    // (Spans are excluded: finalize() appends each worker's idle
    // padding after the events it covers.)
    for (i, ring) in trace.data.workers.iter().enumerate() {
        let mut prev = 0u64;
        for ev in ring.iter().filter(|ev| ev.dur.get() == 0) {
            assert!(
                ev.at.get() >= prev,
                "{name}: worker {i} instant at {} after one at {prev}",
                ev.at.get()
            );
            prev = ev.at.get();
        }
    }

    // 3. The happens-before DAG accepts the trace, is acyclic, and its
    // critical path tiles the makespan (construction invariant).
    let dag = Dag::build(&trace.data)
        .unwrap_or_else(|e| panic!("{name}: Dag::build rejected a drop-free native trace: {e}"));
    dag.check_acyclic()
        .unwrap_or_else(|e| panic!("{name}: cycle in native happens-before graph: {e}"));
    let cp = critical_path(&dag);
    assert_eq!(
        cp.total.get(),
        makespan,
        "{name}: critical path does not span the makespan"
    );
}

#[test]
fn fib_traced_invariants() {
    check_traced(Fib::new(12), 2);
}

#[test]
fn btc_traced_invariants() {
    check_traced(Btc::new(8, 1), 2);
}

#[test]
fn uts_traced_invariants() {
    check_traced(Uts::geometric(5), 3);
}

#[test]
fn nqueens_traced_invariants() {
    check_traced(NQueens::new(6), 3);
}

#[test]
fn chain_traced_invariants() {
    check_traced(Chain::fig10(50), 2);
}

#[test]
fn lossy_ring_degrades_honestly() {
    // A 512-event ring cannot hold NQueens(6): events must be dropped,
    // the DAG must refuse the trace, and the online accounts must still
    // land within epsilon of the (surviving-event) makespan. The ring
    // is small enough to guarantee eviction but large enough that the
    // final task completions survive — the ring keeps the newest
    // events, so only a tiny ring (tens of slots) could lose every
    // `TaskEnd` to the post-completion scheduler tail and with it the
    // makespan.
    let (stats, trace) = NativeRunner::new(2)
        .with_work_divisor(8)
        .with_tracing(512)
        .run_traced(NQueens::new(6));
    assert!(
        stats.trace_dropped > 0,
        "expected drops from a 64-event ring"
    );
    assert_eq!(
        stats.trace_dropped,
        trace.data.dropped(),
        "stats and trace disagree on drop count"
    );

    match Dag::build(&trace.data) {
        Err(ProfileError::DroppedEvents { dropped, .. }) => {
            assert!(dropped > 0, "DroppedEvents with a zero count")
        }
        Ok(_) => panic!("Dag::build accepted a lossy trace"),
        Err(e) => panic!("expected DroppedEvents, got {e}"),
    }

    // Makespan is computed from surviving TaskEnd events, so the online
    // accounts (complete despite drops) may overshoot it slightly; they
    // must not be wildly off.
    let makespan = trace.data.makespan.get();
    assert!(makespan > 0, "lossy trace lost the makespan entirely");
    for (i, acc) in trace.accounts.iter().enumerate() {
        let total = acc.total().get();
        let eps = makespan / 10;
        assert!(
            total.abs_diff(makespan) <= eps,
            "worker {i}: account total {total} vs makespan {makespan} (eps {eps})"
        );
    }
}
