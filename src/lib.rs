//! # Uni-Address Threads
//!
//! A Rust reproduction of *"Uni-Address Threads: Scalable Thread
//! Management for RDMA-Based Work Stealing"* (Akiyama & Taura,
//! HPDC 2015): a thread-management scheme that migrates native threads —
//! register context plus stack frames — between distributed-memory nodes
//! with one-sided RDMA work stealing, in O(1) virtual memory per worker.
//!
//! This crate is a facade over the workspace:
//!
//! - [`model`] (`uat-model`) — the backend-neutral task model: `Action`
//!   programs, the `Workload` trait, and sequential ground-truth
//!   profiling. Both backends below execute this one model.
//! - [`core`] (`uat-core`) — the uni-address region discipline,
//!   suspend/resume, the RDMA steal protocol, and the iso-address
//!   baseline it is compared against.
//! - [`cluster`] (`uat-cluster`) — a deterministic discrete-event
//!   simulation of the FX10-style machine that runs the real protocol
//!   code end to end.
//! - [`workloads`] (`uat-workloads`) — the paper's benchmarks: Binary
//!   Task Creation, Unbalanced Tree Search (with a from-scratch SHA-1
//!   splittable RNG), NQueens, Fibonacci.
//! - [`fiber`] (`uat-fiber`) — a *native* x86-64 lightweight-thread
//!   runtime built on the paper's Appendix A context-switching assembly,
//!   with real multi-worker work stealing and an interpreter
//!   (`fiber::interp`) that runs any [`model`] workload on real fibers.
//! - [`metrics`] (`uat-metrics`, feature `metrics`) — the live-metrics
//!   layer: per-worker sharded counters, log-bucketed latency
//!   histograms, and Prometheus-text/JSON exporters that both backends
//!   stream into while running.
//! - [`rdma`], [`vmem`], [`deque`], [`base`] — the substrates: simulated
//!   fabric, simulated virtual memory, THE-protocol deques, and common
//!   types.
//!
//! ## Quickstart (native)
//!
//! ```
//! use uni_address_threads::fiber::{self, Runtime};
//!
//! fn fib(n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let a = fiber::spawn(move || fib(n - 1)); // child-first: runs now
//!     let b = fib(n - 2);
//!     a.join() + b
//! }
//!
//! let rt = Runtime::new(2);
//! assert_eq!(rt.run(|| fib(16)), 987);
//! ```
//!
//! ## Quickstart (simulated cluster)
//!
//! ```
//! use uni_address_threads::cluster::{Engine, SimConfig};
//! use uni_address_threads::workloads::Btc;
//!
//! // 2 nodes x 15 workers of simulated FX10 run Binary Task Creation.
//! let stats = Engine::new(SimConfig::fx10(2), Btc::new(12, 1)).run();
//! assert_eq!(stats.total_tasks, Btc::new(12, 1).expected_tasks());
//! assert!(stats.steals_completed > 0);
//! ```

pub use uat_base as base;
pub use uat_cluster as cluster;
pub use uat_core as core;
pub use uat_deque as deque;
pub use uat_fiber as fiber;
#[cfg(feature = "metrics")]
pub use uat_metrics as metrics;
pub use uat_model as model;
pub use uat_rdma as rdma;
pub use uat_trace as trace;
pub use uat_vmem as vmem;
pub use uat_workloads as workloads;
